//! Adversarial integration tests: the full catalogue of runtime attacks
//! from the paper's adversary model (Section III-B), each mounted on the
//! real stack and each detected.

use apps::{app_build_options, syringe_pump};
use dialed::pipeline::{InstrumentMode, InstrumentedOp};
use dialed::prelude::*;
use msp430::periph::Dma;
use msp430::regs::Reg;

fn syringe(variant: &str) -> InstrumentedOp {
    let src = match variant {
        "safe" => syringe_pump::SOURCE,
        "df" => syringe_pump::SOURCE_VULN_DF,
        "cf" => syringe_pump::SOURCE_VULN_CF,
        _ => unreachable!(),
    };
    InstrumentedOp::build(src, "syringe_op", &app_build_options(InstrumentMode::Full)).unwrap()
}

fn verify(op: &InstrumentedOp, dev: &DialedDevice, ks: &KeyStore, round: u64) -> Report {
    let chal = Challenge::derive(b"atk", round);
    let proof = dev.prove(&chal);
    let mut v = DialedVerifier::new(op.clone(), ks.clone());
    for p in syringe_pump::policies() {
        v = v.with_policy(p);
    }
    v.verify(&VerifyRequest::new(&proof, &chal))
}

#[test]
fn fig1_hijack_reproduced_and_classified() {
    let op = syringe("cf");
    let ks = KeyStore::from_seed(1);
    let inject = op.image.symbol("spc_inject").unwrap();
    let mut dev = DialedDevice::new(op.clone(), ks.clone());
    dev.platform_mut().uart.feed(&syringe_pump::attack_packet_cf(inject));
    dev.invoke(&[0; 8]);
    let report = verify(&op, &dev, &ks, 1);
    assert_eq!(report.verdict, Verdict::Attack);
    let hijack = report
        .findings
        .iter()
        .find_map(|f| match f {
            Finding::ReturnHijack { at, expected, actual } => Some((*at, *expected, *actual)),
            _ => None,
        })
        .expect("hijack finding");
    assert_eq!(hijack.2, inject, "actual target is the post-check gadget");
    assert_ne!(hijack.1, hijack.2);
}

#[test]
fn fig2_data_only_attack_needs_no_annotation() {
    let op = syringe("df");
    let ks = KeyStore::from_seed(2);
    let mut dev = DialedDevice::new(op.clone(), ks.clone());
    syringe_pump::feed_attack_df(dev.platform_mut());
    dev.invoke(&[0; 8]);
    let report = verify(&op, &dev, &ks, 2);
    assert_eq!(report.verdict, Verdict::Attack);
    assert!(report.findings.iter().any(
        |f| matches!(f, Finding::OutOfBoundsWrite { addr, .. } if *addr == syringe_pump::SET_ADDR)
    ));
}

#[test]
fn dma_input_forgery_during_run_detected() {
    // The attacker DMAs a fake "settings" value into RAM while the op runs,
    // hoping the op consumes it. APEX clears EXEC for any mid-run DMA.
    let op = syringe("safe");
    let ks = KeyStore::from_seed(3);
    let mut dev = DialedDevice::new(op.clone(), ks.clone());
    syringe_pump::feed_nominal(dev.platform_mut());
    dev.invoke_with_budget(&[0; 8], 50); // part-way into the op
    dev.dma(&Dma { dst: apps::GLOBALS, data: vec![0xFF, 0x00] });
    dev.run_raw(1_000_000);
    let report = verify(&op, &dev, &ks, 3);
    assert_eq!(report.verdict, Verdict::Rejected);
}

#[test]
fn interrupt_based_toctou_detected() {
    // An ISR that fires mid-operation could modify state between check and
    // use; APEX clears EXEC on any interrupt inside ER.
    let src = r#"
        .org 0xE000
op:
        eint
        mov #1, r10
        mov #2, r11
        dint
        ret
"#;
    let op = InstrumentedOp::build(src, "op", &BuildOptions::default()).unwrap();
    let ks = KeyStore::from_seed(4);
    let mut dev = DialedDevice::new(op.clone(), ks.clone());
    dev.platform_mut().load_words(0xFFE0 + 2 * 9, &[0xF700]);
    dev.platform_mut().load_words(0xF700, &[0x1300]);
    dev.cpu_mut().raise_irq(9);
    dev.invoke(&[0; 8]);
    let chal = Challenge::derive(b"irq", 0);
    let proof = dev.prove(&chal);
    let report = DialedVerifier::new(op, ks).verify(&VerifyRequest::new(&proof, &chal));
    assert_eq!(report.verdict, Verdict::Rejected);
}

#[test]
fn malicious_caller_wrong_r_aborts() {
    let op = syringe("safe");
    let ks = KeyStore::from_seed(5);
    let mut dev = DialedDevice::new(op.clone(), ks.clone());
    syringe_pump::feed_nominal(dev.platform_mut());
    dev.cpu_mut().set_reg(Reg::SP, apps::STACK_TOP);
    dev.cpu_mut().set_reg(Reg::R4, 0x0500); // wrong R
    dev.cpu_mut().set_pc(op.options.caller_site);
    let info = dev.run_raw(50_000);
    assert_eq!(info.stop, apex::pox::StopReason::StepBudgetExhausted, "spins at entry");
    let report = verify(&op, &dev, &ks, 5);
    assert_eq!(report.verdict, Verdict::Rejected);
}

#[test]
fn stray_pointer_write_into_log_aborts() {
    // A (vulnerable) op whose pointer write is redirected into the live log
    // region must hit the F5 write check and abort.
    let src = r#"
        .org 0xE000
op:
        mov.b &0x0066, r10          ; attacker-controlled low byte
        mov.b #0, &0x0066
        mov.b &0x0066, r11
        mov.b #0, &0x0066
        swpb r11
        bis r11, r10                ; attacker controls full pointer
        mov #0xAA, 0(r10)           ; unchecked pointer store
        ret
"#;
    let opts = apps::app_build_options(InstrumentMode::Full);
    let op = InstrumentedOp::build(src, "op", &opts).unwrap();
    let ks = KeyStore::from_seed(6);
    let mut dev = DialedDevice::new(op.clone(), ks.clone());
    // Aim the store at the top of OR, where CF-Log entries live.
    let target = opts.or_max & !1;
    dev.platform_mut().uart.feed(&[(target & 0xFF) as u8, (target >> 8) as u8]);
    let info = dev.invoke(&[0; 8]);
    assert_eq!(
        info.stop,
        apex::pox::StopReason::StepBudgetExhausted,
        "write check must spin-abort"
    );
    let chal = Challenge::derive(b"f5", 0);
    let proof = dev.prove(&chal);
    assert!(!proof.pox.exec);
    // Benign pointer (a normal global) flows through cleanly.
    let mut dev = DialedDevice::new(op.clone(), ks.clone());
    dev.platform_mut().uart.feed(&[0x00, 0x03]); // 0x0300
    let info = dev.invoke(&[0; 8]);
    assert_eq!(info.stop, apex::pox::StopReason::ReachedStop, "{:?}", dev.violation());
    let chal = Challenge::derive(b"f5", 1);
    let proof = dev.prove(&chal);
    let verifier = DialedVerifier::new(op, ks)
        .with_policy(Box::new(GlobalWriteBounds::new(vec![(0x0300, 0x0301), (0x0066, 0x0067)])));
    assert!(verifier.verify(&VerifyRequest::new(&proof, &chal)).is_clean());
}

#[test]
fn code_patch_detected_even_with_exec_set() {
    // Patch a *data table outside ER*? No — patch the op itself before the
    // run: EXEC may still latch (write happened before Running), but the
    // MAC over ER exposes the modification.
    let op = syringe("safe");
    let ks = KeyStore::from_seed(7);
    let mut dev = DialedDevice::new(op.clone(), ks.clone());
    syringe_pump::feed_nominal(dev.platform_mut());
    // Overwrite one word of the instrumented op (e.g. weaken a check).
    dev.platform_mut().load_words(op.op_entry + 6, &[0x4303]);
    dev.invoke(&[0; 8]);
    let report = verify(&op, &dev, &ks, 7);
    assert_eq!(report.verdict, Verdict::Rejected);
}

#[test]
fn input_forgery_in_transit_detected() {
    // A network adversary rewrites the I-Log portion of the proof to make a
    // hot sensor look cool: MAC fails.
    let s = apps::fire_sensor::scenario();
    let op = s.build(InstrumentMode::Full);
    let ks = KeyStore::from_seed(8);
    let mut dev = DialedDevice::new(op.clone(), ks.clone());
    apps::fire_sensor::feed_hot(dev.platform_mut());
    dev.invoke(&[0; 8]);
    let chal = Challenge::derive(b"forge", 0);
    let mut proof = dev.prove(&chal);
    // Find and tweak a log word (any position will do — the whole OR is
    // MACed).
    let len = proof.pox.or_data.len();
    proof.pox.or_data[len - 20] ^= 0x10;
    let report = DialedVerifier::new(op, ks).verify(&VerifyRequest::new(&proof, &chal));
    assert_eq!(report.verdict, Verdict::Rejected);
}
