//! End-to-end fleet simulation: 500 devices across two operations, with a
//! mix of honest devices, replayers, duplicate submitters, proof
//! corrupters and wrong-challenge responders — every message crossing the
//! wire codec, every verdict flowing back through sharded batch ingest.

use apps::fire_sensor;
use dialed::attest::DialedDevice;
use dialed::pipeline::{BuildOptions, InstrumentMode, InstrumentedOp};
use dialed::report::Verdict;
use fleet::wire::{self, Message, ProofMsg};
use fleet::{DeviceId, Fleet, FleetConfig, OpId, SessionError, SessionId, SessionState};
use vrased::Challenge;

/// What each simulated device does with its challenge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Role {
    /// Proves honestly, submits once.
    Honest,
    /// Proves honestly, then submits the identical frame a second time.
    Duplicate,
    /// Proves honestly; later replays the captured proof against a fresh
    /// session.
    Replayer,
    /// Flips a byte of the OR log before submitting.
    Corrupter,
    /// Answers a challenge it made up instead of the issued one.
    WrongChallenge,
}

fn role_for(i: usize) -> Role {
    match i % 10 {
        6 => Role::Duplicate,
        7 => Role::Replayer,
        8 => Role::Corrupter,
        9 => Role::WrongChallenge,
        _ => Role::Honest,
    }
}

/// One device's bookkeeping for the round.
struct SimDevice {
    id: DeviceId,
    role: Role,
    device: DialedDevice,
    feed: fn(&mut msp430::platform::Platform),
    args: [u16; 8],
    /// Sessions whose verdict must be `Verified`.
    verified_sessions: Vec<SessionId>,
    /// Sessions whose verdict must be `Rejected`.
    rejected_sessions: Vec<SessionId>,
}

fn no_feed(_: &mut msp430::platform::Platform) {}

const TINY_SRC: &str = "\
    .org 0xE000\nop:\n mov r15, r10\n add r14, r10\n mov r10, &0x0060\n ret\n";

/// Round-trips a message through the wire codec, asserting fidelity —
/// every protocol byte string in this test crosses encode/decode.
fn via_wire(msg: Message) -> Message {
    let bytes = wire::encode(&msg);
    let decoded = wire::decode(&bytes).expect("wire round-trip");
    assert_eq!(decoded, msg, "decode(encode(x)) must equal x");
    decoded
}

fn provision(
    fleet: &mut Fleet,
    op_id: OpId,
    op: &InstrumentedOp,
    feed: fn(&mut msp430::platform::Platform),
    args: [u16; 8],
    count: usize,
    seed_base: u64,
) -> Vec<SimDevice> {
    (0..count)
        .map(|i| {
            let id = fleet.register_device(op_id, seed_base + i as u64).unwrap();
            let ks = fleet.device_keystore(id).unwrap();
            SimDevice {
                id,
                // Device ids are fleet-global and sequential, so they give
                // each device its role independent of the op split.
                role: role_for(id.0 as usize),
                device: DialedDevice::new(op.clone(), ks),
                feed,
                args,
                verified_sessions: Vec::new(),
                rejected_sessions: Vec::new(),
            }
        })
        .collect()
}

#[test]
fn five_hundred_device_mixed_fleet() {
    let mut fleet = Fleet::new(FleetConfig { workers: Some(4), ..FleetConfig::default() });

    // Two operations ⇒ two ingest shards: the paper's fire sensor and a
    // tiny adder, both fully instrumented.
    let sensor = fire_sensor::scenario().build(InstrumentMode::Full);
    let sensor_id = fleet.register_op("fire-sensor", sensor.clone(), vec![]);
    let tiny = InstrumentedOp::build(TINY_SRC, "op", &BuildOptions::default()).unwrap();
    let tiny_id = fleet.register_op("adder", tiny.clone(), vec![]);

    let mut sim: Vec<SimDevice> = Vec::with_capacity(500);
    sim.extend(provision(
        &mut fleet,
        sensor_id,
        &sensor,
        fire_sensor::feed_nominal,
        fire_sensor::scenario().args,
        300,
        1_000,
    ));
    sim.extend(provision(
        &mut fleet,
        tiny_id,
        &tiny,
        no_feed,
        [0, 0, 0, 0, 0, 0, 2, 3],
        200,
        9_000,
    ));
    assert_eq!(sim.len(), 500);

    let now = 0u64;
    let mut session_errors = 0usize;
    let mut replay_captures: Vec<(usize, ProofMsg)> = Vec::new();

    // Round 1: every device gets a challenge (via the wire) and answers
    // according to its role (via the wire).
    for (i, d) in sim.iter_mut().enumerate() {
        let chal = fleet.issue(d.id, now).unwrap();
        let Message::Challenge(chal) = via_wire(Message::Challenge(chal)) else { unreachable!() };
        let sid = SessionId(chal.session);

        (d.feed)(d.device.platform_mut());
        let info = d.device.invoke(&d.args);
        assert_eq!(info.stop, apex::pox::StopReason::ReachedStop, "device {i}");

        let mut proof = d.device.prove(&chal.challenge);
        match d.role {
            Role::Corrupter => {
                proof.pox.or_data[11] ^= 0x80;
                d.rejected_sessions.push(sid);
            }
            Role::WrongChallenge => {
                proof = d.device.prove(&Challenge::derive(b"self-chosen", i as u64));
                d.rejected_sessions.push(sid);
            }
            _ => d.verified_sessions.push(sid),
        }

        let frame = wire::encode(&Message::Proof(ProofMsg {
            session: chal.session,
            device: d.id.0,
            proof: proof.clone(),
        }));
        fleet.submit_wire(&frame, now + 1).expect("first submission is always accepted");

        match d.role {
            Role::Duplicate => {
                // Identical frame again: must die at the session layer.
                let err = fleet.submit_wire(&frame, now + 2).unwrap_err();
                assert_eq!(
                    err,
                    Ok(SessionError::NotAwaitingProof(SessionState::Submitted)),
                    "device {i}"
                );
                session_errors += 1;
            }
            Role::Replayer => {
                replay_captures
                    .push((i, ProofMsg { session: chal.session, device: d.id.0, proof }));
            }
            _ => {}
        }
    }

    // Replayers: a fresh session is issued, but the captured round-1 proof
    // is replayed into it. The anti-replay window must reject it before
    // any verification work; the fresh session stays Issued.
    let mut replay_sessions: Vec<SessionId> = Vec::new();
    for (i, capture) in &replay_captures {
        let d = &sim[*i];
        let chal = fleet.issue(d.id, now + 2).unwrap();
        let replay = ProofMsg { session: chal.session, ..capture.clone() };
        let frame = wire::encode(&Message::Proof(replay));
        let err = fleet.submit_wire(&frame, now + 3).unwrap_err();
        assert_eq!(err, Ok(SessionError::ReplayedProof), "device {i}");
        session_errors += 1;
        replay_sessions.push(SessionId(chal.session));
    }

    // Nothing rejected at the session layer ever reached the queue.
    assert_eq!(fleet.pending(), 500, "exactly one accepted submission per device");

    // Drain: every state shard has work, and each shard batches its two
    // operations separately for the shared engines.
    let (stats, expired) = fleet.drain(now + 4);
    assert_eq!(stats.drained, 500);
    assert_eq!(stats.shards, fleet.shards().len(), "500 devices reach every state shard");
    assert_eq!(stats.batches, 2 * fleet.shards().len(), "two ops per shard ⇒ two batches each");
    assert_eq!(expired, 0);
    assert_eq!(fleet.pending(), 0);

    let honest: usize = sim.iter().map(|d| d.verified_sessions.len()).sum();
    let hostile: usize = sim.iter().map(|d| d.rejected_sessions.len()).sum();
    assert_eq!(stats.verified, honest, "every honest device must end Verified");
    assert_eq!(stats.rejected, hostile, "every corrupted/wrong-challenge proof must fail");
    assert_eq!(honest + hostile, 500);

    for d in &sim {
        for &sid in &d.verified_sessions {
            let s = fleet.session(sid).unwrap();
            assert_eq!(s.state, SessionState::Verified, "{sid} of {:?}", d.role);
            let dev = fleet.device(d.id).unwrap();
            assert_eq!(dev.last_verified, Some(s.nonce));
        }
        for &sid in &d.rejected_sessions {
            let s = fleet.session(sid).unwrap();
            assert_eq!(s.state, SessionState::Rejected, "{sid} of {:?}", d.role);
            let report = s.report.as_ref().unwrap();
            assert_eq!(report.verdict, Verdict::Rejected);
            // Rejected cryptographically: the emulator never ran.
            assert_eq!(report.stats.emulated_insns, 0, "{sid} reached emulation");
        }
        // Every resolved session's report survives the wire.
        for &sid in d.verified_sessions.iter().chain(&d.rejected_sessions) {
            let msg = fleet.report_msg(sid).unwrap();
            via_wire(Message::Report(msg));
        }
    }

    // The replayed-into sessions were never resolved (still Issued) and
    // eventually expire rather than verify.
    for &sid in &replay_sessions {
        assert_eq!(fleet.session(sid).unwrap().state, SessionState::Issued);
    }
    let (_, expired) = fleet.drain(now + 1_000_000);
    assert_eq!(expired, replay_sessions.len());

    assert_eq!(session_errors, 100, "50 duplicates + 50 replays died at the session layer");

    // Registry totals line up with the per-role accounting.
    let verified_total: u64 = fleet.devices().map(|d| d.verified).sum();
    let rejected_total: u64 = fleet.devices().map(|d| d.rejected).sum();
    assert_eq!(verified_total as usize, honest);
    assert_eq!(rejected_total as usize, hostile);
}
