//! Cross-crate integration tests for the DIALED stack live in `tests/`.
//!
//! This library crate is intentionally empty: it exists so the integration
//! suite can be a workspace member with the full dependency set.
#![forbid(unsafe_code)]
