//! The honest-lifecycle invariant: every proof an honest device produces
//! over its whole firmware lifecycle — config updates, fresh stimulus
//! each round, an OTA reboot into V2 — verifies `Clean` against the
//! image in effect, under every verifier dispatch configuration. And the
//! one dishonest lifecycle shape that needs the lifecycle layer to
//! express: a device that *skipped* the OTA answering a verifier that
//! rolled forward must die as a MAC mismatch.

use apps::lifecycle::lifecycles;
use dialed::report::{Finding, RejectClass, Verdict};
use dialed::{DialedVerifier, EmuWorkspace, Verifier, VerifyRequest};
use simdev::{DeviceSim, RoundArtifacts};
use vrased::{Challenge, KeyStore};

/// The three dispatch configurations the emulator supports: forced
/// decode, per-step icache, superblock block-at-a-time.
const DISPATCHES: [(bool, bool); 3] = [(false, false), (true, false), (true, true)];

/// Rounds run on the factory (V1) image before the OTA.
const PRE_OTA_ROUNDS: usize = 3;
/// Rounds run on the V2 image after the OTA.
const POST_OTA_ROUNDS: usize = 2;

fn round_challenge(scenario: &str, round: usize) -> Challenge {
    Challenge::derive(scenario.as_bytes(), round as u64)
}

#[test]
fn honest_lifecycles_verify_clean_under_every_dispatch() {
    for (i, spec) in lifecycles().into_iter().enumerate() {
        let name = spec.scenario.name;
        let keystore = KeyStore::from_seed(0x51D0_0000 + i as u64);
        let mut sim = DeviceSim::new(spec, keystore.clone());

        let mut rounds: Vec<RoundArtifacts> = Vec::new();
        for r in 0..PRE_OTA_ROUNDS {
            rounds.push(sim.duty_cycle(&round_challenge(name, r)));
        }
        sim.flash_v2();
        for r in PRE_OTA_ROUNDS..PRE_OTA_ROUNDS + POST_OTA_ROUNDS {
            rounds.push(sim.duty_cycle(&round_challenge(name, r)));
        }

        for art in &rounds {
            // Verify against the image that was in effect for that round
            // (the artifact records it), under all three dispatch modes.
            let verifier = DialedVerifier::new(art.op.clone(), keystore.clone());
            let challenge = round_challenge(name, art.round);
            let mut verdicts = Vec::new();
            for (icache, superblocks) in DISPATCHES {
                let mut ws = EmuWorkspace::new();
                ws.set_dispatch(icache, superblocks);
                let report =
                    verifier.verify_in(&mut ws, &VerifyRequest::new(&art.proof, &challenge));
                assert_eq!(
                    report.verdict,
                    Verdict::Clean,
                    "{name} round {} (icache={icache}, superblocks={superblocks}): {report}",
                    art.round,
                );
                verdicts.push(report.verdict);
            }
            assert!(verdicts.windows(2).all(|w| w[0] == w[1]));
        }
    }
}

#[test]
fn proofs_do_not_transfer_across_rounds() {
    // Each round's proof answers that round's challenge and no other —
    // the freshness property the per-round challenges exist for.
    for (i, spec) in lifecycles().into_iter().enumerate() {
        let name = spec.scenario.name;
        let keystore = KeyStore::from_seed(0x51D0_1000 + i as u64);
        let mut sim = DeviceSim::new(spec, keystore.clone());
        let art = sim.duty_cycle(&round_challenge(name, 0));

        let verifier = DialedVerifier::new(art.op.clone(), keystore.clone());
        let wrong = round_challenge(name, 1);
        let report = verifier.verify(&VerifyRequest::new(&art.proof, &wrong));
        assert_eq!(report.verdict, Verdict::Rejected, "{name}: {report}");
        assert_eq!(reject_class(&report), Some(RejectClass::Mac), "{name}: {report}");
    }
}

#[test]
fn stale_device_after_ota_rollout_is_rejected() {
    // The fleet rolled everyone forward to V2, but this device never took
    // the update: it answers honestly, on real hardware, with the real
    // key — just against the wrong image. The code-region MAC must kill
    // it before any data-flow reasoning.
    for (i, spec) in lifecycles().into_iter().enumerate() {
        let name = spec.scenario.name;
        let keystore = KeyStore::from_seed(0x51D0_2000 + i as u64);
        let mut stale = DeviceSim::new(spec, keystore.clone());
        let challenge = round_challenge(name, 0);
        let art = stale.duty_cycle(&challenge);

        let rolled_forward = DialedVerifier::new(stale.v2().clone(), keystore.clone());
        for (icache, superblocks) in DISPATCHES {
            let mut ws = EmuWorkspace::new();
            ws.set_dispatch(icache, superblocks);
            let report =
                rolled_forward.verify_in(&mut ws, &VerifyRequest::new(&art.proof, &challenge));
            assert_eq!(
                report.verdict,
                Verdict::Rejected,
                "{name} (icache={icache}, superblocks={superblocks}): {report}",
            );
            assert_eq!(
                reject_class(&report),
                Some(RejectClass::Mac),
                "{name} (icache={icache}, superblocks={superblocks}): {report}",
            );
        }
    }
}

fn reject_class(report: &dialed::report::Report) -> Option<RejectClass> {
    report.findings.iter().find_map(|f| match f {
        Finding::PoxRejected { reason } => Some(reason.class()),
        _ => None,
    })
}
