//! Replays the committed attack corpus (`corpus/` at the repository
//! root) through both transport paths and pins the exact outcome
//! distribution. This is the regression gate the corpus exists for:
//! any change to the verifier, the session layer, challenge derivation,
//! or the wire codec that silently alters how a recorded attack dies —
//! or worse, lets one through — fails here.

use dialed::report::RejectClass;
use simdev::corpus::{load_dir, CorpusCase};
use simdev::replay::{replay_in_process, replay_over_net, DEVICES_PER_SCENARIO};
use simdev::ReplayStats;
use std::path::PathBuf;

fn committed_corpus() -> Vec<CorpusCase> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus");
    load_dir(&root).expect("committed corpus must decode cleanly")
}

/// Scenarios in the corpus (one directory each).
const SCENARIOS: usize = 3;
/// Cases per scenario: honest + 14 catalogued mutants + tag replay (which
/// reuses the honest device, hence one more case than devices).
const CASES_PER_SCENARIO: usize = DEVICES_PER_SCENARIO + 1;

fn assert_expected_distribution(stats: &ReplayStats) {
    assert_eq!(stats.cases, SCENARIOS * CASES_PER_SCENARIO);
    // Per scenario: the honest baseline and the pinned-Clean head forge.
    assert_eq!(stats.clean, 2 * SCENARIOS as u64, "{stats:?}");
    // Per scenario: CF splice, CF reorder, input branch flip.
    assert_eq!(stats.attacks, 3 * SCENARIOS as u64, "{stats:?}");
    let per_class = |c: RejectClass| stats.rejects_by_class[c.index()];
    // Tag flip, OR flip, stale challenge, stale image — everything the
    // response MAC covers.
    assert_eq!(per_class(RejectClass::Mac), 4 * SCENARIOS as u64, "{stats:?}");
    // OR truncation and extension.
    assert_eq!(per_class(RejectClass::OrLength), 2 * SCENARIOS as u64, "{stats:?}");
    // Forged region bounds.
    assert_eq!(per_class(RejectClass::Region), SCENARIOS as u64, "{stats:?}");
    // EXEC-clear forgery, interrupt window, DMA write.
    assert_eq!(per_class(RejectClass::Exec), 3 * SCENARIOS as u64, "{stats:?}");
    // The anti-replay window killing the replayed honest tag.
    assert_eq!(per_class(RejectClass::Session), SCENARIOS as u64, "{stats:?}");
    assert_eq!(
        stats.rejects_by_class.iter().sum::<u64>(),
        11 * SCENARIOS as u64,
        "unexpected reject classes: {stats:?}",
    );
}

#[test]
fn committed_corpus_replays_identically_on_both_paths() {
    let cases = committed_corpus();
    assert_eq!(cases.len(), SCENARIOS * CASES_PER_SCENARIO);

    let in_process = replay_in_process(&cases).expect("in-process replay");
    assert_expected_distribution(&in_process);

    let (networked, net) = replay_over_net(&cases).expect("networked replay");
    assert_expected_distribution(&networked);

    // The transport must be invisible: same proofs, same verdicts, same
    // per-class accounting — and the server's own counters already
    // cross-checked inside replay_over_net.
    assert_eq!(in_process, networked);
    assert_eq!(net.total_rejects(), 11 * SCENARIOS as u64);
    assert_eq!(net.rejects_by_class, in_process.rejects_by_class);
}

#[test]
fn corpus_cases_are_unique_and_well_formed() {
    let cases = committed_corpus();
    let mut sessions: Vec<u64> = cases.iter().map(|c| c.challenge.session).collect();
    sessions.dedup();
    assert_eq!(sessions.len(), cases.len(), "duplicate session ids in corpus");
    for case in &cases {
        assert_eq!(case.challenge.session, case.submit.body.session, "{}", case.id());
        assert_eq!(case.challenge.device, case.submit.body.device, "{}", case.id());
        assert!(!case.expect.is_empty(), "{}: no recorded expectation", case.id());
    }
}
