//! The mutation-engine oracle, property-tested: randomly parameterized
//! mutants from every attack family, forged against every scenario, must
//! produce exactly the verdict class their mutation requires — never an
//! acceptance, never a panic — under all three verifier dispatch
//! configurations.

use proptest::prelude::*;
use proptest::strategy::Union;

use dialed::{DialedVerifier, EmuWorkspace, Verifier, VerifyRequest};
use simdev::{MutantForge, Mutation};
use std::sync::OnceLock;
use vrased::KeyStore;

const DISPATCHES: [(bool, bool); 3] = [(false, false), (true, false), (true, true)];

/// One forge per scenario, built once: each construction runs a full
/// honest device round, so the property cases share them.
fn forges() -> &'static [MutantForge] {
    static FORGES: OnceLock<Vec<MutantForge>> = OnceLock::new();
    FORGES.get_or_init(|| {
        apps::lifecycle::lifecycles()
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                let name = spec.scenario.name;
                MutantForge::for_scenario(
                    name,
                    KeyStore::from_seed(0xF0C0 + i as u64),
                    name.as_bytes(),
                )
            })
            .collect()
    })
}

/// Free-ranging mutation parameters: ranks, bit indices, and masks are
/// drawn from the full integer domain — the forge reduces them modulo the
/// honest proof's geometry, so every instance is applicable everywhere.
fn mutation_strategy() -> Union<Mutation> {
    prop_oneof![
        any::<usize>().prop_map(|bit| Mutation::TagBitFlip { bit }),
        any::<usize>().prop_map(|bit| Mutation::OrBitFlip { bit }),
        any::<usize>().prop_map(|bytes| Mutation::OrTruncate { bytes }),
        any::<usize>().prop_map(|bytes| Mutation::OrExtend { bytes }),
        any::<u16>().prop_map(|shrink| Mutation::BoundsForge { shrink }),
        any::<bool>().prop_map(|reseal| Mutation::ExecClearForge { reseal }),
        (any::<usize>(), any::<u16>()).prop_map(|(rank, xor)| Mutation::CfSplice { rank, xor }),
        any::<usize>().prop_map(|rank| Mutation::CfReorder { rank }),
        Just(Mutation::InputBranchFlip),
        (any::<usize>(), any::<u16>()).prop_map(|(arg, xor)| Mutation::HeadForge { arg, xor }),
        Just(Mutation::StaleChallenge),
        Just(Mutation::ImageMismatch),
        Just(Mutation::IrqWindow),
        Just(Mutation::DmaWrite),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn every_mutant_dies_exactly_as_required(
        scenario in 0usize..3,
        m in mutation_strategy(),
    ) {
        let forge = &forges()[scenario % forges().len()];
        let case = forge.forge(&m);
        let verifier = DialedVerifier::new(forge.op().clone(), forge.keystore().clone());
        let mut verdicts = Vec::new();
        for (icache, superblocks) in DISPATCHES {
            let mut ws = EmuWorkspace::new();
            ws.set_dispatch(icache, superblocks);
            let report =
                verifier.verify_in(&mut ws, &VerifyRequest::new(&case.proof, &case.challenge));
            if let Err(e) = case.expected.check(&report) {
                return Err(TestCaseError::fail(format!(
                    "{} / {:?} (icache={icache}, superblocks={superblocks}): {e}",
                    forge.scenario_name(),
                    case.mutation,
                )));
            }
            verdicts.push(report.verdict);
        }
        // The oracle must not depend on how instructions are dispatched.
        prop_assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "{} / {:?}: dispatch-dependent verdicts {verdicts:?}",
            forge.scenario_name(),
            case.mutation,
        );
    }
}

/// The canonical catalog — every mutation kind, minimized parameters —
/// must hold on every scenario. This is the deterministic floor under the
/// randomized property above, and mirrors exactly what the committed
/// corpus was generated from.
#[test]
fn canonical_catalog_holds_on_every_scenario() {
    for forge in forges() {
        let verifier = DialedVerifier::new(forge.op().clone(), forge.keystore().clone());
        for m in Mutation::catalog() {
            let case = forge.forge(&m);
            let report = verifier.verify(&VerifyRequest::new(&case.proof, &case.challenge));
            case.expected.check(&report).unwrap_or_else(|e| {
                panic!("{} / {}: {e}", forge.scenario_name(), m.label());
            });
        }
    }
}
