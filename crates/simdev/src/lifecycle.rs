//! The firmware-lifecycle simulator: drives a device through realistic
//! duty cycles over the real emulated stack.
//!
//! One [`DeviceSim`] owns a [`DialedDevice`] flashed with an evaluation
//! app and walks it through the cycle a deployed device lives:
//!
//! ```text
//! round n:  config update → sensor stimulus → invoke op → attest
//! ...
//! round k:  OTA reboot into the V2 image (fresh DialedDevice, same key)
//! round k+1: duty cycles continue on V2
//! ```
//!
//! Every round produces a proof answering a caller-supplied challenge;
//! the honest-lifecycle invariant — the whole point of this layer — is
//! that *every* such proof verifies Clean against the image in effect,
//! under every verifier dispatch configuration. The mutation engine
//! ([`crate::mutate`]) then starts from these honest rounds.

use apex::pox::StopReason;
use apps::lifecycle::LifecycleSpec;
use dialed::attest::{DialedDevice, DialedProof, RunInfo};
use dialed::pipeline::{InstrumentMode, InstrumentedOp};
use vrased::{Challenge, KeyStore};

/// Everything one duty cycle leaves behind.
pub struct RoundArtifacts {
    /// Zero-based round index.
    pub round: usize,
    /// The attestation response for this round.
    pub proof: DialedProof,
    /// Device-side run statistics.
    pub run: RunInfo,
    /// The firmware image that was in effect (what an up-to-date verifier
    /// must check against).
    pub op: InstrumentedOp,
    /// The config word applied this round, if the app has a config global.
    pub config: Option<(u16, u16)>,
}

/// A simulated device living through firmware duty cycles.
pub struct DeviceSim {
    spec: LifecycleSpec,
    v1: InstrumentedOp,
    v2: InstrumentedOp,
    keystore: KeyStore,
    device: DialedDevice,
    round: usize,
    on_v2: bool,
}

impl DeviceSim {
    /// Boots a device on the spec's V1 image with `keystore` provisioned.
    #[must_use]
    pub fn new(spec: LifecycleSpec, keystore: KeyStore) -> Self {
        let v1 = spec.scenario.build(InstrumentMode::Full);
        let v2 = spec.build_v2(InstrumentMode::Full);
        let device = DialedDevice::new(v1.clone(), keystore.clone());
        Self { spec, v1, v2, keystore, device, round: 0, on_v2: false }
    }

    /// The lifecycle spec driving this device.
    #[must_use]
    pub fn spec(&self) -> &LifecycleSpec {
        &self.spec
    }

    /// The firmware image currently flashed.
    #[must_use]
    pub fn current_op(&self) -> &InstrumentedOp {
        if self.on_v2 {
            &self.v2
        } else {
            &self.v1
        }
    }

    /// The V1 (factory) image.
    #[must_use]
    pub fn v1(&self) -> &InstrumentedOp {
        &self.v1
    }

    /// The V2 (post-OTA) image.
    #[must_use]
    pub fn v2(&self) -> &InstrumentedOp {
        &self.v2
    }

    /// Rounds completed so far.
    #[must_use]
    pub fn rounds_done(&self) -> usize {
        self.round
    }

    /// OTA update: reboot into the V2 image. The attestation key survives
    /// the reflash (it lives in ROM per the VRASED model); RAM does not.
    pub fn flash_v2(&mut self) {
        self.device = DialedDevice::new(self.v2.clone(), self.keystore.clone());
        self.on_v2 = true;
    }

    /// Runs one duty cycle — config update, stimulus, operation, proof —
    /// and answers `challenge`.
    ///
    /// # Panics
    ///
    /// Panics if the operation fails to run to completion; an honest
    /// lifecycle never exhausts its step budget.
    pub fn duty_cycle(&mut self, challenge: &Challenge) -> RoundArtifacts {
        let round = self.round;
        self.round += 1;
        // Management-plane config update: device software writes the new
        // word into its data global between operations.
        let config = self.spec.config_for(round);
        if let Some((addr, value)) = config {
            self.device.platform_mut().load_words(addr, &[value]);
        }
        // Sensor / peripheral stimulus for this round.
        (self.spec.stimulus(round))(self.device.platform_mut());
        let args = self.spec.scenario.args;
        let run = self.device.invoke(&args);
        assert_eq!(
            run.stop,
            StopReason::ReachedStop,
            "{} round {round}: honest duty cycle did not complete",
            self.spec.scenario.name,
        );
        RoundArtifacts {
            round,
            proof: self.device.prove(challenge),
            run,
            op: self.current_op().clone(),
            config,
        }
    }
}
