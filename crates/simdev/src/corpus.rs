//! The persisted attack corpus: minimized adversarial cases serialized
//! with the fleet's total-decode wire framing.
//!
//! One `.case` file is a concatenation of ordinary wire frames — the same
//! bytes a hostile device would put on a socket — decoded back through
//! [`FrameReader`], so the corpus exercises the codec every time it is
//! loaded:
//!
//! ```text
//! ┌────────────────┐  the exact challenge the canonical fleet issued
//! │ Challenge frame│  (full ChallengeMsg: session, device, nonce,
//! ├────────────────┤   deadline, challenge bytes — the determinism anchor)
//! │ Submit frame   │  the adversarial submission, verbatim
//! ├────────────────┤
//! │ Reject frame   │  expectation: an allowed RejectClass, encoded as a
//! │ …              │  representative reason (one frame per allowed class)
//! │ Report frame   │  expectation: an allowed Verdict (empty findings)
//! └────────────────┘
//! ```
//!
//! Replay ([`crate::replay`]) rebuilds the canonical fleet, re-issues
//! every challenge in session order, asserts byte-exact equality with the
//! recorded `Challenge` frame, then submits the recorded `Submit` frame
//! and checks the outcome against the expectation frames. Cases live at
//! `corpus/<scenario>/<nn>-<mutation>.case` and are committed, so every
//! future change to the verifier, the session layer or the codec re-runs
//! the whole attack catalogue.

use dialed::report::{RejectClass, RejectReason, Report, Verdict, VerifyStats};
use fleet::wire::{self, ChallengeMsg, FrameReader, Message, RejectMsg, ReportMsg, SubmitMsg};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Per-frame payload cap when decoding case files — far above any real
/// case, low enough that a corrupted length field fails fast.
const MAX_CASE_FRAME: usize = 1 << 20;

/// One acceptable outcome for a corpus case.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expect {
    /// The submission must be rejected — at the session layer or by the
    /// verifier — with a reason of this class.
    Class(RejectClass),
    /// The session must resolve with this verdict (`Clean` for the honest
    /// baseline cases, `Attack` for reconstructed control-flow attacks).
    Verdict(Verdict),
}

impl fmt::Display for Expect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expect::Class(c) => write!(f, "reject:{c}"),
            Expect::Verdict(v) => write!(f, "verdict:{v:?}"),
        }
    }
}

/// A persisted adversarial case: the challenge it was minted against, the
/// submission, and the set of acceptable outcomes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CorpusCase {
    /// Scenario name (= directory under the corpus root).
    pub scenario: String,
    /// Case name (= file stem, `<nn>-<mutation>`).
    pub name: String,
    /// The challenge the canonical fleet issued for this case, recorded in
    /// full. Replay must reproduce it byte-exactly.
    pub challenge: ChallengeMsg,
    /// The adversarial submission.
    pub submit: SubmitMsg,
    /// Acceptable outcomes; the case fails replay on anything else.
    pub expect: Vec<Expect>,
}

/// The representative [`RejectReason`] used to encode an expected class
/// as a wire frame. Payload fields are zeroed/emptied: expectations match
/// on class, never on detail text.
#[must_use]
pub fn representative_reason(class: RejectClass) -> RejectReason {
    match class {
        RejectClass::Region => RejectReason::RegionMismatch,
        RejectClass::Exec => RejectReason::ExecClear,
        RejectClass::ErLength => RejectReason::ErLengthMismatch,
        RejectClass::OrLength => RejectReason::OrLengthMismatch,
        RejectClass::Mac => RejectReason::MacMismatch,
        RejectClass::NotInstrumented => RejectReason::NotFullyInstrumented,
        RejectClass::UnknownKey => RejectReason::UnknownKey { device: 0 },
        RejectClass::Malformed => RejectReason::MalformedSubmission { detail: String::new() },
        RejectClass::Session => RejectReason::SessionViolation { detail: String::new() },
        RejectClass::Principal => RejectReason::UnknownPrincipal { detail: String::new() },
        RejectClass::Overloaded => RejectReason::Overloaded { pending: 0 },
    }
}

impl CorpusCase {
    /// Whether `class` is an acceptable reject class for this case.
    #[must_use]
    pub fn allows_class(&self, class: RejectClass) -> bool {
        self.expect.iter().any(|e| matches!(e, Expect::Class(c) if *c == class))
    }

    /// Whether `verdict` is an acceptable resolved verdict for this case.
    #[must_use]
    pub fn allows_verdict(&self, verdict: Verdict) -> bool {
        self.expect.iter().any(|e| matches!(e, Expect::Verdict(v) if *v == verdict))
    }

    /// Checks a resolved session report against the expectations: a
    /// `Rejected` verdict must carry a first `PoxRejected` reason of an
    /// allowed class; `Clean`/`Attack` must be explicitly allowed.
    ///
    /// # Errors
    ///
    /// A human-readable violation description.
    pub fn check_report(&self, report: &Report) -> Result<(), String> {
        match report.verdict {
            Verdict::Rejected => {
                let reason = report.findings.iter().find_map(|f| match f {
                    dialed::report::Finding::PoxRejected { reason } => Some(reason),
                    _ => None,
                });
                match reason {
                    Some(r) if self.allows_class(r.class()) => Ok(()),
                    Some(r) => Err(format!(
                        "{}: rejected as {} but case allows [{}]",
                        self.id(),
                        r.class(),
                        self.expect_list(),
                    )),
                    None => Err(format!("{}: rejected without a PoxRejected finding", self.id())),
                }
            }
            v if self.allows_verdict(v) => Ok(()),
            v => Err(format!(
                "{}: verdict {v:?} but case allows [{}]",
                self.id(),
                self.expect_list()
            )),
        }
    }

    /// Checks a submit-layer rejection class against the expectations.
    ///
    /// # Errors
    ///
    /// A human-readable violation description.
    pub fn check_submit_reject(&self, class: RejectClass) -> Result<(), String> {
        if self.allows_class(class) {
            Ok(())
        } else {
            Err(format!(
                "{}: rejected at submit as {class} but case allows [{}]",
                self.id(),
                self.expect_list(),
            ))
        }
    }

    /// `scenario/name`, the stable case identifier.
    #[must_use]
    pub fn id(&self) -> String {
        format!("{}/{}", self.scenario, self.name)
    }

    fn expect_list(&self) -> String {
        self.expect.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
    }

    /// Serializes the case as a stream of wire frames (see the module
    /// docs for the layout).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&wire::encode(&Message::Challenge(self.challenge)));
        out.extend_from_slice(&wire::encode(&Message::Submit(self.submit.clone())));
        for e in &self.expect {
            let frame = match e {
                Expect::Class(class) => Message::Reject(RejectMsg {
                    request: self.submit.request,
                    reason: representative_reason(*class),
                }),
                Expect::Verdict(v) => Message::Report(ReportMsg {
                    session: self.submit.body.session,
                    device: self.submit.body.device,
                    report: Report {
                        verdict: *v,
                        findings: Vec::new(),
                        stats: VerifyStats::default(),
                    },
                }),
            };
            out.extend_from_slice(&wire::encode(&frame));
        }
        out
    }

    /// Decodes a case from its frame stream. `scenario` and `name` come
    /// from the file's location, not the bytes.
    ///
    /// # Errors
    ///
    /// A description of the first malformed or out-of-order frame.
    pub fn decode(scenario: &str, name: &str, bytes: &[u8]) -> Result<Self, String> {
        let mut frames = FrameReader::new(MAX_CASE_FRAME);
        frames.feed(bytes);
        let mut msgs = Vec::new();
        loop {
            match frames.poll() {
                Ok(Some(msg)) => msgs.push(msg),
                Ok(None) => break,
                Err(e) => return Err(format!("{scenario}/{name}: frame error: {e}")),
            }
        }
        if frames.buffered() > 0 {
            return Err(format!(
                "{scenario}/{name}: {} trailing bytes after the last frame",
                frames.buffered()
            ));
        }
        let mut it = msgs.into_iter();
        let challenge = match it.next() {
            Some(Message::Challenge(c)) => c,
            other => {
                return Err(format!("{scenario}/{name}: expected Challenge first, got {other:?}"))
            }
        };
        let submit = match it.next() {
            Some(Message::Submit(s)) => s,
            other => {
                return Err(format!("{scenario}/{name}: expected Submit second, got {other:?}"))
            }
        };
        let mut expect = Vec::new();
        for msg in it {
            match msg {
                Message::Reject(r) => expect.push(Expect::Class(r.reason.class())),
                Message::Report(r) => expect.push(Expect::Verdict(r.report.verdict)),
                other => {
                    return Err(format!(
                        "{scenario}/{name}: unexpected expectation frame {other:?}"
                    ))
                }
            }
        }
        if expect.is_empty() {
            return Err(format!("{scenario}/{name}: no expectation frames"));
        }
        Ok(Self {
            scenario: scenario.to_string(),
            name: name.to_string(),
            challenge,
            submit,
            expect,
        })
    }

    /// Writes the case to `root/<scenario>/<name>.case`, creating
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn save(&self, root: &Path) -> io::Result<()> {
        let dir = root.join(&self.scenario);
        fs::create_dir_all(&dir)?;
        fs::write(dir.join(format!("{}.case", self.name)), self.encode())
    }
}

/// Loads every `*.case` file under `root` (one directory level per
/// scenario), in lexicographic order, then sorts by recorded session id —
/// the canonical replay order.
///
/// # Errors
///
/// File-system errors, or the first malformed case file.
pub fn load_dir(root: &Path) -> Result<Vec<CorpusCase>, String> {
    let mut cases = Vec::new();
    let mut dirs: Vec<_> = fs::read_dir(root)
        .map_err(|e| format!("corpus root {}: {e}", root.display()))?
        .filter_map(Result::ok)
        .map(|d| d.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let scenario = dir.file_name().and_then(|s| s.to_str()).unwrap_or_default().to_string();
        let mut files: Vec<_> = fs::read_dir(&dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?
            .filter_map(Result::ok)
            .map(|d| d.path())
            .filter(|p| p.extension().is_some_and(|e| e == "case"))
            .collect();
        files.sort();
        for file in files {
            let name = file.file_stem().and_then(|s| s.to_str()).unwrap_or_default().to_string();
            let bytes = fs::read(&file).map_err(|e| format!("{}: {e}", file.display()))?;
            cases.push(CorpusCase::decode(&scenario, &name, &bytes)?);
        }
    }
    cases.sort_by_key(|c| c.challenge.session);
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apex::{PoxConfig, PoxProof};
    use dialed::attest::DialedProof;
    use fleet::wire::ProofMsg;
    use vrased::Challenge;

    fn sample_case() -> CorpusCase {
        let cfg = PoxConfig::new(0xE000, 0xE0FF, 0xE0FE, 0x0400, 0x0BFF).unwrap();
        CorpusCase {
            scenario: "FireSensor".into(),
            name: "03-tag-bit-flip".into(),
            challenge: ChallengeMsg {
                session: 7,
                device: 2,
                nonce: 0,
                deadline: 64,
                challenge: Challenge::derive(b"corpus-test", 7),
            },
            submit: SubmitMsg {
                request: 1,
                body: ProofMsg {
                    session: 7,
                    device: 2,
                    proof: DialedProof {
                        pox: PoxProof { cfg, exec: true, or_data: vec![0; 16], tag: [9; 32] },
                    },
                },
            },
            expect: vec![Expect::Class(RejectClass::Mac), Expect::Verdict(Verdict::Attack)],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let case = sample_case();
        let bytes = case.encode();
        let back = CorpusCase::decode("FireSensor", "03-tag-bit-flip", &bytes).unwrap();
        assert_eq!(back, case);
    }

    #[test]
    fn truncated_case_file_is_rejected_not_panicked() {
        let case = sample_case();
        let bytes = case.encode();
        for cut in [1, 9, bytes.len() - 1] {
            assert!(CorpusCase::decode("s", "n", &bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn expectation_checks() {
        let case = sample_case();
        assert!(case.allows_class(RejectClass::Mac));
        assert!(!case.allows_class(RejectClass::Session));
        assert!(case.allows_verdict(Verdict::Attack));
        assert!(!case.allows_verdict(Verdict::Clean));
        let rejected = Report::rejected(RejectReason::MacMismatch);
        assert!(case.check_report(&rejected).is_ok());
        let wrong = Report::rejected(RejectReason::RegionMismatch);
        assert!(case.check_report(&wrong).is_err());
        assert!(case.check_submit_reject(RejectClass::Mac).is_ok());
        assert!(case.check_submit_reject(RejectClass::Overloaded).is_err());
    }
}
