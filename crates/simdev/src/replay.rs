//! Deterministic corpus replay: the canonical fleet, corpus generation,
//! and the two replay paths (in-process [`Fleet`] and the `fleet::net`
//! TCP server).
//!
//! # Determinism
//!
//! Challenges are derived from `(fleet label, device id, nonce)` and
//! session ids from issue order, so a fleet rebuilt with the same label,
//! the same registration order and the same issue sequence re-mints the
//! *identical* [`ChallengeMsg`](fleet::ChallengeMsg) stream. The corpus
//! pins that: every case
//! records the full challenge message it was minted against, and replay
//! asserts byte-exact equality before submitting anything. A mismatch
//! means challenge derivation, session-id allocation or registration
//! layout changed — which would silently invalidate every recorded proof
//! — and fails the replay loudly instead.
//!
//! # Canonical layout
//!
//! One shard (so session ids are dense), the fixed [`CORPUS_LABEL`], the
//! scenarios of [`lifecycles`] registered in
//! order, and [`DEVICES_PER_SCENARIO`] devices per scenario sharing one
//! per-scenario key seed. Each corpus case targets its own device: the
//! anti-replay window records accepted proof tags per device at *submit*
//! time, so tag-preserving mutants (e.g. an OR truncation that cannot
//! reseal) would otherwise shadow each other. The deliberate exception is
//! the `tag-replay` case, which reuses the honest case's device precisely
//! to hit that window.

use crate::corpus::{CorpusCase, Expect};
use crate::mutate::{Expectation, MutantForge, Mutation};
use apps::lifecycle::{lifecycles, LifecycleSpec};
use dialed::pipeline::InstrumentMode;
use dialed::report::{Finding, RejectClass, RejectReason, Verdict};
use fleet::wire::{Message, ProofMsg, SubmitMsg};
use fleet::{DeviceId, Fleet, FleetConfig, NetClient, NetConfig, NetServer, NetStats, SessionId};
use std::time::Duration;

/// The fleet label every corpus challenge is derived under.
pub const CORPUS_LABEL: &[u8] = b"simdev-corpus-v1";

/// Devices registered per scenario: one per proof-carrying case (the
/// honest baseline plus one per catalogued mutation; the tag-replay case
/// reuses the honest device).
pub const DEVICES_PER_SCENARIO: usize = 15;

/// The provisioning key seed shared by scenario `index`'s devices.
#[must_use]
pub fn scenario_seed(index: usize) -> u64 {
    0xD1A1_ED00 + index as u64
}

/// The canonical corpus fleet: fixed label, one shard, every scenario's
/// V1 image registered in [`lifecycles`] order with
/// [`DEVICES_PER_SCENARIO`] devices each.
#[must_use]
pub fn canonical_fleet() -> Fleet {
    canonical_fleet_with_devices().0
}

/// [`canonical_fleet`] plus the device ids, grouped by scenario index.
#[must_use]
pub fn canonical_fleet_with_devices() -> (Fleet, Vec<Vec<DeviceId>>) {
    let mut fleet = Fleet::new(FleetConfig {
        label: CORPUS_LABEL.to_vec(),
        shards: 1,
        workers: Some(2),
        ..FleetConfig::default()
    });
    let mut devices = Vec::new();
    for (i, spec) in lifecycles().iter().enumerate() {
        let image = spec.scenario.build(InstrumentMode::Full);
        let op = fleet.register_op(spec.scenario.name, image, vec![]);
        let devs = (0..DEVICES_PER_SCENARIO)
            .map(|_| fleet.register_device(op, scenario_seed(i)).expect("op just registered"))
            .collect();
        devices.push(devs);
    }
    (fleet, devices)
}

/// The spec for scenario index `s` (specs are not `Clone`; each forge
/// consumes one).
fn spec_at(s: usize) -> LifecycleSpec {
    lifecycles().into_iter().nth(s).unwrap_or_else(|| panic!("no scenario {s}"))
}

fn expect_for(expectation: &Expectation) -> Vec<Expect> {
    match expectation {
        Expectation::Reject(classes) => classes.iter().copied().map(Expect::Class).collect(),
        Expectation::Attack => vec![Expect::Verdict(Verdict::Attack)],
        // Robust mutations have no *required* outcome; generation pins the
        // observed one after the drain so replay still asserts determinism.
        Expectation::Robust => Vec::new(),
    }
}

/// Generates the full corpus against a fresh canonical fleet, validating
/// every case's expectation in the process (each mutant must die exactly
/// as its mutation class requires; the honest baselines must verify
/// Clean). Returned cases are in session order, ready to [`CorpusCase::save`].
///
/// # Errors
///
/// A description of the first case whose outcome violated its mutation's
/// expectation — a verifier or session-layer bug, not an I/O problem.
#[allow(clippy::too_many_lines)]
pub fn generate() -> Result<Vec<CorpusCase>, String> {
    let (mut fleet, devices) = canonical_fleet_with_devices();
    // (case, pin) — pin marks Robust cases whose observed verdict becomes
    // the recorded expectation after the drain.
    let mut cases: Vec<(CorpusCase, bool)> = Vec::new();
    // Cases that never reach the verifier (submit-layer rejects) need no
    // post-drain check; everything else is checked after one final drain.
    let mut submitted: Vec<usize> = Vec::new();
    let mut request = 0u64;

    for (s, devs) in devices.iter().enumerate() {
        let scenario = spec_at(s).scenario.name;
        let keystore = fleet.device_keystore(devs[0]).map_err(|e| e.to_string())?;

        // Case 0: the honest baseline — must verify Clean, and arms the
        // honest device's anti-replay window for the tag-replay case.
        let honest_ch = fleet.issue(devs[0], 0).map_err(|e| e.to_string())?;
        let forge = MutantForge::new(
            spec_at(s),
            keystore.clone(),
            honest_ch.challenge,
            honest_ch.challenge,
        );
        let honest_proof = forge.honest().clone();
        request += 1;
        let honest_case = CorpusCase {
            scenario: scenario.to_string(),
            name: "00-honest".to_string(),
            challenge: honest_ch,
            submit: SubmitMsg {
                request,
                body: ProofMsg {
                    session: honest_ch.session,
                    device: honest_ch.device,
                    proof: honest_proof.clone(),
                },
            },
            expect: vec![Expect::Verdict(Verdict::Clean)],
        };
        fleet
            .submit(
                SessionId(honest_ch.session),
                DeviceId(honest_ch.device),
                honest_proof.clone(),
                0,
            )
            .map_err(|e| format!("{scenario}/00-honest: submit rejected: {e}"))?;
        submitted.push(cases.len());
        cases.push((honest_case, false));

        // Cases 1..=N: one per catalogued mutation, each on its own device
        // with its own session — the proof is forged against that exact
        // challenge, so MAC-passing mutants (CF splices, reorders) stay
        // MAC-passing at replay.
        for (i, m) in Mutation::catalog().into_iter().enumerate() {
            let dev = devs[i + 1];
            let ch = fleet.issue(dev, 0).map_err(|e| e.to_string())?;
            let forge =
                MutantForge::new(spec_at(s), keystore.clone(), ch.challenge, honest_ch.challenge);
            let mutant = forge.forge(&m);
            let name = format!("{:02}-{}", i + 1, m.label());
            request += 1;
            let case = CorpusCase {
                scenario: scenario.to_string(),
                name: name.clone(),
                challenge: ch,
                submit: SubmitMsg {
                    request,
                    body: ProofMsg {
                        session: ch.session,
                        device: ch.device,
                        proof: mutant.proof.clone(),
                    },
                },
                expect: expect_for(&mutant.expected),
            };
            fleet
                .submit(SessionId(ch.session), DeviceId(ch.device), mutant.proof, 0)
                .map_err(|e| format!("{scenario}/{name}: submit rejected: {e}"))?;
            submitted.push(cases.len());
            cases.push((case, matches!(mutant.expected, Expectation::Robust)));
        }

        // Final case: replay the honest (accepted) proof against a fresh
        // session of the same device — the anti-replay window must kill it
        // at the session layer, before any cryptography.
        let ch = fleet.issue(devs[0], 0).map_err(|e| e.to_string())?;
        request += 1;
        let name = format!("{:02}-tag-replay", Mutation::catalog().len() + 1);
        let case = CorpusCase {
            scenario: scenario.to_string(),
            name: name.clone(),
            challenge: ch,
            submit: SubmitMsg {
                request,
                body: ProofMsg {
                    session: ch.session,
                    device: ch.device,
                    proof: honest_proof.clone(),
                },
            },
            expect: vec![Expect::Class(RejectClass::Session)],
        };
        match fleet.submit(SessionId(ch.session), DeviceId(ch.device), honest_proof, 0) {
            Err(e) if RejectReason::from(e).class() == RejectClass::Session => {}
            Err(e) => return Err(format!("{scenario}/{name}: wrong reject: {e}")),
            Ok(()) => return Err(format!("{scenario}/{name}: replayed proof accepted at submit")),
        }
        cases.push((case, false));
    }

    fleet.drain(0);

    for &idx in &submitted {
        let (case, pin) = &mut cases[idx];
        let session = SessionId(case.submit.body.session);
        let report = fleet
            .session(session)
            .and_then(|s| s.report.clone())
            .ok_or_else(|| format!("{}: no report after drain", case.id()))?;
        if *pin {
            // Robust mutation: record the outcome this verifier actually
            // produced, so replay pins determinism without overclaiming
            // detection.
            case.expect = match report.verdict {
                Verdict::Rejected => {
                    let class = report
                        .findings
                        .iter()
                        .find_map(|f| match f {
                            Finding::PoxRejected { reason } => Some(reason.class()),
                            _ => None,
                        })
                        .ok_or_else(|| format!("{}: rejected without reason", case.id()))?;
                    vec![Expect::Class(class)]
                }
                v => vec![Expect::Verdict(v)],
            };
        }
        case.check_report(&report)?;
    }

    Ok(cases.into_iter().map(|(c, _)| c).collect())
}

/// Aggregate outcome counts of one replay run. Derived purely from the
/// per-case outcomes, so the in-process and networked paths can be
/// compared for equality — and, over the network, cross-checked against
/// the server's own [`NetStats::rejects_by_class`] accounting.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ReplayStats {
    /// Cases replayed.
    pub cases: usize,
    /// Sessions that resolved `Clean`.
    pub clean: u64,
    /// Sessions that resolved `Attack`.
    pub attacks: u64,
    /// Rejections (submit-layer and verifier) by class.
    pub rejects_by_class: [u64; RejectClass::ALL.len()],
}

impl ReplayStats {
    fn note_class(&mut self, class: RejectClass) {
        self.rejects_by_class[class.index()] += 1;
    }
}

/// Replays `cases` (already in session order, as [`crate::corpus::load_dir`]
/// returns them) through a fresh in-process canonical fleet: re-issue and
/// assert every challenge, submit every recorded proof, drain once, check
/// every expectation.
///
/// # Errors
///
/// The first determinism or expectation violation.
pub fn replay_in_process(cases: &[CorpusCase]) -> Result<ReplayStats, String> {
    let mut fleet = canonical_fleet();
    let mut stats = ReplayStats { cases: cases.len(), ..ReplayStats::default() };
    let mut pending: Vec<&CorpusCase> = Vec::new();

    for case in cases {
        let issued = fleet
            .issue(DeviceId(case.challenge.device), 0)
            .map_err(|e| format!("{}: issue failed: {e}", case.id()))?;
        if issued != case.challenge {
            return Err(format!(
                "{}: challenge drift — recorded {:?}, reissued {:?}",
                case.id(),
                case.challenge,
                issued
            ));
        }
        let body = &case.submit.body;
        match fleet.submit(SessionId(body.session), DeviceId(body.device), body.proof.clone(), 0) {
            Ok(()) => pending.push(case),
            Err(e) => {
                let class = RejectReason::from(e).class();
                case.check_submit_reject(class)?;
                stats.note_class(class);
            }
        }
    }

    fleet.drain(0);

    for case in pending {
        let report = fleet
            .session(SessionId(case.submit.body.session))
            .and_then(|s| s.report.clone())
            .ok_or_else(|| format!("{}: no report after drain", case.id()))?;
        case.check_report(&report)?;
        match report.verdict {
            Verdict::Clean => stats.clean += 1,
            Verdict::Attack => stats.attacks += 1,
            Verdict::Rejected => {
                let class = report
                    .findings
                    .iter()
                    .find_map(|f| match f {
                        Finding::PoxRejected { reason } => Some(reason.class()),
                        _ => None,
                    })
                    .ok_or_else(|| format!("{}: rejected without reason", case.id()))?;
                stats.note_class(class);
            }
        }
    }

    Ok(stats)
}

/// Replays `cases` over the `fleet::net` TCP server: spawn the canonical
/// fleet behind a real socket, request every challenge through the wire
/// (asserting equality with the recorded frames), pipeline every
/// submission, and correlate the verdict/reject replies. The logical tick
/// is set to one hour so the whole replay happens at `now == 0` —
/// matching the recorded deadlines and the in-process path exactly.
///
/// On success also cross-checks the server's per-class reject counters
/// against the outcomes the client observed: every reject the corpus
/// expects must be accounted, by class, in [`NetStats`].
///
/// # Errors
///
/// The first I/O, determinism, expectation, or accounting violation.
pub fn replay_over_net(cases: &[CorpusCase]) -> Result<(ReplayStats, NetStats), String> {
    let fleet = canonical_fleet();
    let cfg = NetConfig {
        tick: Duration::from_secs(3600),
        drain_interval: Duration::from_millis(10),
        ..NetConfig::default()
    };
    let handle = NetServer::spawn(fleet, cfg).map_err(|e| format!("spawn: {e}"))?;
    let mut client = NetClient::connect(handle.addr()).map_err(|e| format!("connect: {e}"))?;
    let mut stats = ReplayStats { cases: cases.len(), ..ReplayStats::default() };

    // Phase 1: re-issue every challenge, in session order, call-and-wait
    // so the server's issue order matches generation exactly.
    for case in cases {
        let granted = client
            .request_challenge(case.challenge.device)
            .map_err(|e| format!("{}: issue I/O: {e}", case.id()))?
            .map_err(|m| format!("{}: issue rejected: {m:?}", case.id()))?;
        if granted != case.challenge {
            return Err(format!(
                "{}: challenge drift over net — recorded {:?}, granted {:?}",
                case.id(),
                case.challenge,
                granted
            ));
        }
    }

    // Phase 2: pipeline every submission; the connection preserves order,
    // so the anti-replay window sees submissions in session order.
    let mut by_request = std::collections::HashMap::new();
    for case in cases {
        let req = client
            .submit(case.submit.body.clone())
            .map_err(|e| format!("{}: submit I/O: {e}", case.id()))?;
        by_request.insert(req, case);
    }

    // Phase 3: every submission owes exactly one reply — a Verdict after
    // a drain, or an immediate Reject.
    for _ in 0..cases.len() {
        let msg = client.recv().map_err(|e| format!("recv: {e}"))?;
        match msg {
            Message::Verdict(v) => {
                let case = by_request
                    .remove(&v.request)
                    .ok_or_else(|| format!("uncorrelated verdict for request {}", v.request))?;
                case.check_report(&v.body.report)?;
                match v.body.report.verdict {
                    Verdict::Clean => stats.clean += 1,
                    Verdict::Attack => stats.attacks += 1,
                    Verdict::Rejected => {
                        let class = v
                            .body
                            .report
                            .findings
                            .iter()
                            .find_map(|f| match f {
                                Finding::PoxRejected { reason } => Some(reason.class()),
                                _ => None,
                            })
                            .ok_or_else(|| format!("{}: rejected without reason", case.id()))?;
                        stats.note_class(class);
                    }
                }
            }
            Message::Reject(r) => {
                let case = by_request
                    .remove(&r.request)
                    .ok_or_else(|| format!("uncorrelated reject for request {}", r.request))?;
                let class = r.reason.class();
                case.check_submit_reject(class)?;
                stats.note_class(class);
            }
            other => return Err(format!("unexpected reply {other:?}")),
        }
    }
    if !by_request.is_empty() {
        return Err(format!("{} submissions never answered", by_request.len()));
    }

    let (_fleet, net) = handle.shutdown().map_err(|_| "server thread panicked".to_string())?;

    // The server's own per-class accounting must match what the client
    // observed: every reject bucketed exactly once, by the same class.
    if net.rejects_by_class != stats.rejects_by_class {
        return Err(format!(
            "server reject accounting drift: server {:?}, client {:?}",
            net.rejects_by_class, stats.rejects_by_class
        ));
    }

    Ok((stats, net))
}
