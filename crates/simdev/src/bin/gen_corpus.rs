//! Regenerates the committed attack corpus.
//!
//! ```text
//! cargo run --release -p simdev --bin gen_corpus [-- <output-dir>]
//! ```
//!
//! Generates every case against a fresh canonical fleet (validating each
//! expectation in the process), writes them under the output directory
//! (default `corpus/`), then immediately replays the written files through
//! a second fresh fleet — so a corpus that does not round-trip is never
//! committed.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map_or_else(|| PathBuf::from("corpus"), PathBuf::from);
    let cases = match simdev::replay::generate() {
        Ok(cases) => cases,
        Err(e) => {
            eprintln!("corpus generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for case in &cases {
        if let Err(e) = case.save(&root) {
            eprintln!("writing {}: {e}", case.id());
            return ExitCode::FAILURE;
        }
    }
    let loaded = match simdev::corpus::load_dir(&root) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("re-loading corpus: {e}");
            return ExitCode::FAILURE;
        }
    };
    if loaded != cases {
        eprintln!("corpus did not round-trip through {}", root.display());
        return ExitCode::FAILURE;
    }
    match simdev::replay::replay_in_process(&loaded) {
        Ok(stats) => {
            println!(
                "wrote {} cases to {} (clean {}, attacks {}, rejects {})",
                stats.cases,
                root.display(),
                stats.clean,
                stats.attacks,
                stats.rejects_by_class.iter().sum::<u64>(),
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("replay of freshly written corpus failed: {e}");
            ExitCode::FAILURE
        }
    }
}
