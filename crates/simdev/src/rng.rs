//! Deterministic PRNG for simulator schedules and corpus generation.

/// SplitMix64: tiny, fast, and — crucially for the corpus — fully
/// deterministic across platforms and runs. Every random choice the
/// simulator makes flows from one of these seeded explicitly, so any
/// lifecycle schedule or generated mutant can be reproduced from its seed
/// alone.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_non_constant() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }
}
