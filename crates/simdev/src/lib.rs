//! `simdev`: the generative adversarial-device simulator.
//!
//! Three layers, each building on the one below:
//!
//! 1. **Lifecycle simulator** ([`lifecycle`]) — drives the evaluation
//!    apps through realistic firmware duty cycles (sensor poll → compute
//!    → attest, management-plane config updates, OTA image reloads) on
//!    the real emulated device stack. Honest lifecycles must verify
//!    Clean, always, under every verifier dispatch configuration.
//! 2. **Mutation engine** ([`mutate`]) — applies typed attack mutations
//!    to honest rounds (CF-Log splices resealed under the real key,
//!    interrupt-window and DMA-timed interference, stale images after
//!    OTA, log truncation/extension/reorder, challenge replay, bit
//!    flips in MAC and region bounds), each tagged with the
//!    [`RejectClass`](dialed::RejectClass)es or attack verdict the
//!    verifier is required to produce. Property tests generate mutants
//!    and assert the oracle: never accepted, never a panic.
//! 3. **Persisted corpus** ([`corpus`], [`replay`]) — minimized mutants
//!    serialized with the fleet's total-decode wire framing into the
//!    repository's `corpus/` directory, deterministically replayable
//!    both through an in-process [`fleet::Fleet`] and over the
//!    `fleet::net` TCP server. Every future change to the verifier or
//!    the wire codec re-runs the whole attack catalogue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod lifecycle;
pub mod mutate;
pub mod replay;
pub mod rng;

pub use corpus::{CorpusCase, Expect};
pub use lifecycle::{DeviceSim, RoundArtifacts};
pub use mutate::{Expectation, MutantCase, MutantForge, Mutation};
pub use replay::{canonical_fleet, replay_in_process, replay_over_net, ReplayStats};
pub use rng::SplitMix64;
