//! The typed mutation engine: turns honest attestation rounds into
//! adversarial mutants, each tagged with the verdict class the verifier
//! is *required* to produce.
//!
//! Every [`Mutation`] models a concrete attacker capability from the
//! paper's adversary model:
//!
//! | mutation | capability modelled | required outcome |
//! |---|---|---|
//! | [`TagBitFlip`](Mutation::TagBitFlip) / [`OrBitFlip`](Mutation::OrBitFlip) | tamper with the response in transit | reject: `mac` |
//! | [`OrTruncate`](Mutation::OrTruncate) / [`OrExtend`](Mutation::OrExtend) | truncate / pad the attested logs | reject: `or-length` |
//! | [`BoundsForge`](Mutation::BoundsForge) | attest different regions than provisioned | reject: `region` |
//! | [`ExecClearForge`](Mutation::ExecClearForge) | claim execution that APEX did not witness | reject: `exec` |
//! | [`CfSplice`](Mutation::CfSplice) / [`CfReorder`](Mutation::CfReorder) | compromised software reseals a spliced CF-Log with the real key | attack: log divergence |
//! | [`InputBranchFlip`](Mutation::InputBranchFlip) | forge a logged sensor input that drives a branch | attack: log divergence |
//! | [`HeadForge`](Mutation::HeadForge) | forge the logged operation arguments | robustness only (see below) |
//! | [`StaleChallenge`](Mutation::StaleChallenge) | replay work done for an old challenge | reject: `mac` |
//! | [`ImageMismatch`](Mutation::ImageMismatch) | run a modified / stale firmware image | reject: `mac` |
//! | [`IrqWindow`](Mutation::IrqWindow) | interrupt-window TOCTOU inside the operation | reject: `exec` |
//! | [`DmaWrite`](Mutation::DmaWrite) | DMA-timed memory write mid-operation | reject: `exec` |
//!
//! The crucial asymmetry: mutations above the line are *unauthenticated*
//! (the attacker cannot produce a valid MAC, so the structural and MAC
//! checks kill them), while the splice/forge family is *authenticated* —
//! the mutant is resealed under the device's real key, modelling fully
//! compromised software invoking SW-Att over tampered logs. Those pass
//! every cryptographic check and must die in abstract re-execution
//! instead. [`HeadForge`](Mutation::HeadForge) is the one deliberate
//! exception: a forged
//! argument head is semantically indistinguishable from an honest run
//! with different arguments, so the engine only requires that the
//! verifier never crashes on it ([`Expectation::Robust`]).

use crate::lifecycle::DeviceSim;
use apps::lifecycle::LifecycleSpec;
use apps::{fire_sensor, lifecycle::lifecycles};
use dialed::attest::{DialedDevice, DialedProof};
use dialed::pipeline::InstrumentedOp;
use dialed::report::{Finding, RejectClass, Report, Verdict};
use dialed::{DialedVerifier, SlotClass};
use hacl::DIGEST_LEN;
use msp430::periph::Dma;
use msp430::regs::Reg;
use vrased::{Challenge, KeyStore};

/// MSP430 status-register GIE (general interrupt enable) bit.
const GIE: u16 = 0x0008;

/// One typed attack mutation. Parameters are free-ranging (ranks and bit
/// indices are reduced modulo the honest proof's geometry), so any
/// randomly generated instance is applicable to any scenario.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// Flip one bit of the response MAC.
    TagBitFlip {
        /// Bit index into the tag (mod `8 * DIGEST_LEN`).
        bit: usize,
    },
    /// Flip one bit of the attested OR without resealing.
    OrBitFlip {
        /// Bit index into `or_data` (mod its length in bits).
        bit: usize,
    },
    /// Drop trailing OR bytes (log truncation).
    OrTruncate {
        /// Extra bytes to drop beyond the first (mod 8).
        bytes: usize,
    },
    /// Append zero bytes to the OR (log extension).
    OrExtend {
        /// Extra bytes to append beyond the first (mod 8).
        bytes: usize,
    },
    /// Attest a *valid but different* region geometry, resealed.
    BoundsForge {
        /// How many words to shave off the OR top (mod 4, plus one).
        shrink: u16,
    },
    /// Claim `EXEC` although APEX cleared it.
    ExecClearForge {
        /// Whether to reseal after the flip (an authentic MAC over a
        /// cleared EXEC must still be rejected, and before the MAC is
        /// even checked).
        reseal: bool,
    },
    /// Splice one CF-Log entry and reseal under the real key.
    CfSplice {
        /// Which control-flow slot (rank into the CF slots, mod count).
        rank: usize,
        /// XOR mask applied to the entry (`0` is promoted to a non-zero
        /// mask so the mutant always differs).
        xor: u16,
    },
    /// Swap two differing CF-Log entries and reseal (log reorder).
    CfReorder {
        /// Starting rank for the pair search (mod CF slot count).
        rank: usize,
    },
    /// Forge the logged sensor input that drives the app's branch, then
    /// reseal — the data-only attack the paper's DFA exists to catch.
    InputBranchFlip,
    /// Forge one argument-head entry and reseal (robustness class).
    HeadForge {
        /// Which head slot (mod head count).
        arg: usize,
        /// XOR mask (`0` promoted to `1`).
        xor: u16,
    },
    /// Answer the current session with a proof honestly computed for an
    /// earlier session's challenge.
    StaleChallenge,
    /// Run a different firmware image than the verifier expects (stale
    /// pre-OTA image or locally modified code).
    ImageMismatch,
    /// Take an interrupt inside the attested operation (TOCTOU window).
    IrqWindow,
    /// DMA a value into RAM while the operation runs.
    DmaWrite,
}

impl Mutation {
    /// Stable kebab-case label (corpus file names, diagnostics).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Mutation::TagBitFlip { .. } => "tag-bit-flip",
            Mutation::OrBitFlip { .. } => "or-bit-flip",
            Mutation::OrTruncate { .. } => "or-truncate",
            Mutation::OrExtend { .. } => "or-extend",
            Mutation::BoundsForge { .. } => "bounds-forge",
            Mutation::ExecClearForge { .. } => "exec-clear",
            Mutation::CfSplice { .. } => "cf-splice",
            Mutation::CfReorder { .. } => "cf-reorder",
            Mutation::InputBranchFlip => "input-branch-flip",
            Mutation::HeadForge { .. } => "head-forge",
            Mutation::StaleChallenge => "stale-challenge",
            Mutation::ImageMismatch => "image-mismatch",
            Mutation::IrqWindow => "irq-window",
            Mutation::DmaWrite => "dma-write",
        }
    }

    /// One canonical, minimized instance of every mutation kind — the
    /// corpus generator's seed set.
    #[must_use]
    pub fn catalog() -> Vec<Mutation> {
        vec![
            Mutation::TagBitFlip { bit: 0 },
            Mutation::OrBitFlip { bit: 0 },
            Mutation::OrTruncate { bytes: 0 },
            Mutation::OrExtend { bytes: 0 },
            Mutation::BoundsForge { shrink: 0 },
            Mutation::ExecClearForge { reseal: true },
            Mutation::CfSplice { rank: 0, xor: 0x0004 },
            Mutation::CfReorder { rank: 0 },
            Mutation::InputBranchFlip,
            Mutation::HeadForge { arg: 0, xor: 1 },
            Mutation::StaleChallenge,
            Mutation::ImageMismatch,
            Mutation::IrqWindow,
            Mutation::DmaWrite,
        ]
    }
}

/// What the verifier is required to do with a mutant.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expectation {
    /// `Verdict::Rejected`, with a reason in one of these classes.
    Reject(Vec<RejectClass>),
    /// `Verdict::Attack` (divergence found in abstract re-execution).
    Attack,
    /// Any verdict is acceptable; the assertion is that verification
    /// completes without panicking. Used for mutants that are
    /// semantically indistinguishable from a different honest run.
    Robust,
}

impl Expectation {
    /// Checks a verifier report against this expectation.
    ///
    /// # Errors
    ///
    /// A human-readable description of the violation.
    pub fn check(&self, report: &Report) -> Result<(), String> {
        let reason_class = report.findings.iter().find_map(|f| match f {
            Finding::PoxRejected { reason } => Some(reason.class()),
            _ => None,
        });
        match self {
            Expectation::Reject(classes) => {
                if report.verdict != Verdict::Rejected {
                    return Err(format!("expected Rejected({classes:?}), got {report}"));
                }
                match reason_class {
                    Some(c) if classes.contains(&c) => Ok(()),
                    got => Err(format!("expected reject class in {classes:?}, got {got:?}")),
                }
            }
            Expectation::Attack => {
                if report.verdict == Verdict::Attack {
                    Ok(())
                } else {
                    Err(format!("expected Attack, got {report}"))
                }
            }
            Expectation::Robust => Ok(()),
        }
    }
}

/// A forged attestation exchange: the mutant proof, the challenge the
/// verifier checks it against, and the required outcome.
#[derive(Clone, Debug)]
pub struct MutantCase {
    /// The mutation that produced this case.
    pub mutation: Mutation,
    /// The (tampered) proof.
    pub proof: DialedProof,
    /// The challenge of the session under attack.
    pub challenge: Challenge,
    /// The required verifier outcome.
    pub expected: Expectation,
}

/// Builds mutants against one scenario's honest round.
///
/// Holds the honest proof, the session challenges, both firmware images,
/// the device key (the "fully compromised software" capability), and the
/// OR slot map that lets mutations target control-flow, input, or head
/// entries specifically.
pub struct MutantForge {
    spec: LifecycleSpec,
    op: InstrumentedOp,
    v2: InstrumentedOp,
    keystore: KeyStore,
    challenge: Challenge,
    stale_challenge: Challenge,
    honest: DialedProof,
    slots: Vec<SlotClass>,
}

impl MutantForge {
    /// Runs one honest round of `spec` (round-0 config and stimulus) and
    /// prepares to forge against it. `challenge` is the session under
    /// attack; `stale_challenge` models an earlier session of the same
    /// device.
    ///
    /// # Panics
    ///
    /// Panics if the honest round fails to complete — mutants are only
    /// meaningful relative to a working baseline.
    #[must_use]
    pub fn new(
        spec: LifecycleSpec,
        keystore: KeyStore,
        challenge: Challenge,
        stale_challenge: Challenge,
    ) -> Self {
        let sim_spec = respec(&spec);
        let mut sim = DeviceSim::new(sim_spec, keystore.clone());
        let honest = sim.duty_cycle(&challenge).proof;
        let op = sim.v1().clone();
        let v2 = sim.v2().clone();
        let slots =
            DialedVerifier::new(op.clone(), keystore.clone()).or_slot_classes(&honest.pox.or_data);
        Self { spec, op, v2, keystore, challenge, stale_challenge, honest, slots }
    }

    /// The forge for scenario `name` (see [`lifecycles`]), with challenges
    /// derived from `label`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown scenario name.
    #[must_use]
    pub fn for_scenario(name: &str, keystore: KeyStore, label: &[u8]) -> Self {
        let spec = lifecycles()
            .into_iter()
            .find(|lc| lc.scenario.name == name)
            .unwrap_or_else(|| panic!("unknown scenario {name:?}"));
        let stale = Challenge::derive(label, 0);
        let current = Challenge::derive(label, 1);
        Self::new(spec, keystore, current, stale)
    }

    /// The verifier-side image mutants are checked against.
    #[must_use]
    pub fn op(&self) -> &InstrumentedOp {
        &self.op
    }

    /// The honest proof mutants start from.
    #[must_use]
    pub fn honest(&self) -> &DialedProof {
        &self.honest
    }

    /// The challenge of the session under attack.
    #[must_use]
    pub fn challenge(&self) -> &Challenge {
        &self.challenge
    }

    /// The device keystore (verification runs under the same key).
    #[must_use]
    pub fn keystore(&self) -> &KeyStore {
        &self.keystore
    }

    /// The scenario driving this forge.
    #[must_use]
    pub fn scenario_name(&self) -> &'static str {
        self.spec.scenario.name
    }

    fn slot_indices(&self, class: SlotClass) -> Vec<usize> {
        (0..self.slots.len()).filter(|&i| self.slots[i] == class).collect()
    }

    fn read_slot(or: &[u8], idx: usize) -> u16 {
        u16::from_le_bytes([or[2 * idx], or[2 * idx + 1]])
    }

    fn write_slot(or: &mut [u8], idx: usize, value: u16) {
        or[2 * idx..2 * idx + 2].copy_from_slice(&value.to_le_bytes());
    }

    fn reseal(&self, proof: &mut DialedProof) {
        proof.pox.reseal(self.keystore.clone(), &self.challenge, &self.op.er_bytes);
    }

    /// A fresh honest device on `op`, staged with round-`round` config and
    /// stimulus, ready to invoke.
    fn staged_device(&self, op: &InstrumentedOp, round: usize) -> DialedDevice {
        let mut dev = DialedDevice::new(op.clone(), self.keystore.clone());
        if let Some((addr, value)) = self.spec.config_for(round) {
            dev.platform_mut().load_words(addr, &[value]);
        }
        (self.spec.stimulus(round))(dev.platform_mut());
        dev
    }

    /// Applies `m` to the honest round, producing the mutant case.
    ///
    /// # Panics
    ///
    /// Panics if the honest proof's geometry cannot host the mutation
    /// (e.g. a CF reorder on a log with fewer than two distinct entries)
    /// — that would be a bug in the scenario set, not an attack outcome.
    #[must_use]
    pub fn forge(&self, m: &Mutation) -> MutantCase {
        let mut proof = self.honest.clone();
        let mut challenge = self.challenge;
        let expected = match m {
            Mutation::TagBitFlip { bit } => {
                let byte = (bit / 8) % DIGEST_LEN;
                proof.pox.tag[byte] ^= 1 << (bit % 8);
                Expectation::Reject(vec![RejectClass::Mac])
            }
            Mutation::OrBitFlip { bit } => {
                let byte = (bit / 8) % proof.pox.or_data.len();
                proof.pox.or_data[byte] ^= 1 << (bit % 8);
                Expectation::Reject(vec![RejectClass::Mac])
            }
            Mutation::OrTruncate { bytes } => {
                let cut = 1 + bytes % 8;
                let keep = proof.pox.or_data.len() - cut;
                proof.pox.or_data.truncate(keep);
                Expectation::Reject(vec![RejectClass::OrLength])
            }
            Mutation::OrExtend { bytes } => {
                let add = 1 + bytes % 8;
                let len = proof.pox.or_data.len();
                proof.pox.or_data.resize(len + add, 0);
                Expectation::Reject(vec![RejectClass::OrLength])
            }
            Mutation::BoundsForge { shrink } => {
                let words = 1 + shrink % 4;
                proof.pox.cfg.or_max -= 2 * words;
                let keep = proof.pox.or_data.len() - usize::from(2 * words);
                proof.pox.or_data.truncate(keep);
                self.reseal(&mut proof);
                Expectation::Reject(vec![RejectClass::Region])
            }
            Mutation::ExecClearForge { reseal } => {
                proof.pox.exec = false;
                if *reseal {
                    self.reseal(&mut proof);
                }
                Expectation::Reject(vec![RejectClass::Exec])
            }
            Mutation::CfSplice { rank, xor } => {
                let cf = self.slot_indices(SlotClass::ControlFlow);
                assert!(!cf.is_empty(), "{}: no CF slots", self.scenario_name());
                let idx = cf[rank % cf.len()];
                let mask = if *xor == 0 { 0x0004 } else { *xor };
                let old = Self::read_slot(&proof.pox.or_data, idx);
                Self::write_slot(&mut proof.pox.or_data, idx, old ^ mask);
                self.reseal(&mut proof);
                Expectation::Attack
            }
            Mutation::CfReorder { rank } => {
                let cf = self.slot_indices(SlotClass::ControlFlow);
                let n = cf.len();
                let pair = (0..n)
                    .map(|k| (cf[(rank + k) % n], cf[(rank + k + 1) % n]))
                    .find(|&(i, j)| {
                        Self::read_slot(&proof.pox.or_data, i)
                            != Self::read_slot(&proof.pox.or_data, j)
                    })
                    .unwrap_or_else(|| {
                        panic!("{}: CF-Log has no two distinct entries", self.scenario_name())
                    });
                let (a, b) = (
                    Self::read_slot(&proof.pox.or_data, pair.0),
                    Self::read_slot(&proof.pox.or_data, pair.1),
                );
                Self::write_slot(&mut proof.pox.or_data, pair.0, b);
                Self::write_slot(&mut proof.pox.or_data, pair.1, a);
                self.reseal(&mut proof);
                Expectation::Attack
            }
            Mutation::InputBranchFlip => {
                // Input slots in execution order: the log grows downward,
                // so the first input read sits at the highest address.
                let mut inputs = self.slot_indices(SlotClass::Input);
                inputs.reverse();
                assert!(!inputs.is_empty(), "{}: no input slots", self.scenario_name());
                let (exec_rank, value) = branch_flip_forge(self.scenario_name());
                let idx = inputs[exec_rank.min(inputs.len() - 1)];
                Self::write_slot(&mut proof.pox.or_data, idx, value);
                self.reseal(&mut proof);
                Expectation::Attack
            }
            Mutation::HeadForge { arg, xor } => {
                let heads = self.slot_indices(SlotClass::Head);
                assert!(!heads.is_empty(), "{}: no head slots", self.scenario_name());
                let idx = heads[arg % heads.len()];
                let mask = if *xor == 0 { 1 } else { *xor };
                let old = Self::read_slot(&proof.pox.or_data, idx);
                Self::write_slot(&mut proof.pox.or_data, idx, old ^ mask);
                self.reseal(&mut proof);
                Expectation::Robust
            }
            Mutation::StaleChallenge => {
                // Honest work for an earlier challenge, replayed at the
                // current session. Round 1 stimulus/config so the proof
                // differs from any previously accepted round-0 proof.
                let mut dev = self.staged_device(&self.op, 1);
                dev.invoke(&self.spec.scenario.args);
                proof = dev.prove(&self.stale_challenge);
                challenge = self.challenge;
                Expectation::Reject(vec![RejectClass::Mac])
            }
            Mutation::ImageMismatch => {
                let mut dev = self.staged_device(&self.v2, 0);
                dev.invoke(&self.spec.scenario.args);
                proof = dev.prove(&self.challenge);
                Expectation::Reject(vec![RejectClass::Mac])
            }
            Mutation::IrqWindow => {
                let mut dev = self.staged_device(&self.op, 0);
                // Interrupt vector 9 → a bare RETI handler outside ER.
                dev.platform_mut().load_words(0xFFE0 + 2 * 9, &[0xF700]);
                dev.platform_mut().load_words(0xF700, &[0x1300]);
                dev.invoke_with_budget(&self.spec.scenario.args, 60);
                let sr = dev.cpu_mut().reg(Reg::SR);
                dev.cpu_mut().set_reg(Reg::SR, sr | GIE);
                dev.cpu_mut().raise_irq(9);
                dev.run_raw(2_000_000);
                proof = dev.prove(&self.challenge);
                Expectation::Reject(vec![RejectClass::Exec])
            }
            Mutation::DmaWrite => {
                let mut dev = self.staged_device(&self.op, 0);
                dev.invoke_with_budget(&self.spec.scenario.args, 60);
                dev.dma(&Dma { dst: apps::GLOBALS, data: vec![0xFF, 0x00] });
                dev.run_raw(2_000_000);
                proof = dev.prove(&self.challenge);
                Expectation::Reject(vec![RejectClass::Exec])
            }
        };
        MutantCase { mutation: m.clone(), proof, challenge, expected }
    }
}

/// Rebuilds a [`LifecycleSpec`] (the struct is not `Clone`; its fields
/// are all `'static` data).
fn respec(spec: &LifecycleSpec) -> LifecycleSpec {
    lifecycles()
        .into_iter()
        .find(|lc| lc.scenario.name == spec.scenario.name)
        .expect("spec came from lifecycles()")
}

/// Per-scenario input forgery that provably flips a branch in abstract
/// re-execution: `(input index in execution order, forged value)`.
///
/// * `FireSensor`: the first input is the raw temperature sample; forging
///   24 °C to 80 °C crosses every configured alarm threshold.
/// * `SyringePump`: inputs 0–1 are the UART packet, 2–9 the settings
///   readback; forging a settings word to `0x7FFF` trips the overdose
///   guard.
/// * `UltrasonicRanger`: the first input is the first echo poll; a
///   non-zero sample ends the 120-iteration poll loop on iteration one.
fn branch_flip_forge(name: &str) -> (usize, u16) {
    match name {
        "FireSensor" => (0, fire_sensor::raw_for_temp(80)),
        "SyringePump" => (3, 0x7FFF),
        "UltrasonicRanger" => (0, 1),
        other => panic!("no branch-flip forge for scenario {other:?}"),
    }
}
