//! The proof-of-execution protocol: device-side runner/quoter and the
//! verifier-side check.

use crate::metadata::PoxConfig;
use crate::monitor::ApexMonitor;
use crate::violation::Violation;
use hacl::{sha256_mb, Digest, Sha256};
use msp430::cpu::{Cpu, CpuFault, Step};
use msp430::platform::Platform;
use msp430::trace::Trace;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use vrased::{check_tags_lanes, Challenge, KeyStore, RaVerifier, SwAtt, TagLane};

/// Why a [`PoxVerifier`] rejected a proof.
///
/// Every cryptographic / structural failure class gets its own variant so
/// upper layers (and wire codecs) can match on the cause instead of
/// comparing strings; [`fmt::Display`] renders the operator-facing text.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PoxRejection {
    /// The proof's region metadata differs from what the verifier expects.
    RegionMismatch,
    /// The EXEC flag was clear: the operation was not executed untouched
    /// from entry to exit, so there is no valid proof of execution.
    ExecClear,
    /// The verifier's expected ER image does not span the configured
    /// executable region (verifier misconfiguration, not device fault).
    ErLengthMismatch,
    /// The claimed OR snapshot does not span the configured output region.
    OrLengthMismatch,
    /// The MAC did not verify: wrong key or challenge, or tampered code /
    /// output / metadata / EXEC flag.
    MacMismatch,
}

impl fmt::Display for PoxRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PoxRejection::RegionMismatch => "region metadata mismatch",
            PoxRejection::ExecClear => "EXEC flag clear: no valid proof of execution",
            PoxRejection::ErLengthMismatch => "expected ER image length mismatch",
            PoxRejection::OrLengthMismatch => "OR snapshot length mismatch",
            PoxRejection::MacMismatch => "MAC verification failed (code or output tampered)",
        })
    }
}

impl std::error::Error for PoxRejection {}

/// A proof of execution as shipped to the verifier.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PoxProof {
    /// Region metadata the proof speaks about.
    pub cfg: PoxConfig,
    /// The EXEC flag at quote time.
    pub exec: bool,
    /// Claimed OR contents (the attested output, e.g. CF-Log + I-Log).
    pub or_data: Vec<u8>,
    /// HMAC over `challenge ‖ bounds ‖ SHA-256(ER) ‖ bounds ‖ SHA-256(OR) ‖
    /// metadata ‖ EXEC` (regions enter the MAC as content digests — see
    /// [`vrased::swatt`]).
    pub tag: Digest,
}

impl PoxProof {
    /// Recomputes the tag over this proof's *current* contents under the
    /// device key — the adversarial reseal hook for the mutation engine.
    ///
    /// This models the strongest software adversary of the paper's model:
    /// compromised application code that holds no key material itself but
    /// can invoke SW-Att over tampered OR contents, region metadata or the
    /// EXEC byte it controls. A resealed proof always passes the MAC check,
    /// so mutations applied before resealing probe the *semantic* layers of
    /// verification (structure checks, abstract execution, OR comparison,
    /// policies) instead of dying at the tag compare.
    ///
    /// `er_bytes` must span exactly `cfg.er_min..=cfg.er_max` — the code
    /// image the MAC covers (tamper with a copy of it to model stale-image
    /// attestation).
    pub fn reseal(&mut self, keystore: KeyStore, challenge: &Challenge, er_bytes: &[u8]) {
        let mut extra = [0u8; 11];
        extra[..10].copy_from_slice(&self.cfg.to_metadata_bytes());
        extra[10] = u8::from(self.exec);
        self.tag = SwAtt::new(keystore).attest_region_bytes(
            challenge,
            &[
                (self.cfg.er_min, self.cfg.er_max, er_bytes),
                (self.cfg.or_min, self.cfg.or_max, &self.or_data),
            ],
            &extra,
        );
    }
}

/// Outcome of running one attested operation on the device.
#[derive(Debug)]
pub struct RunOutcome {
    /// Execution trace (instructions, cycles, bus events).
    pub trace: Trace,
    /// Why the run stopped.
    pub stop: StopReason,
}

/// Why [`PoxProver::run_to`] returned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// PC reached the requested stop address.
    ReachedStop,
    /// The step budget ran out (e.g. an instrumentation abort spin-loop).
    StepBudgetExhausted,
    /// The CPU faulted.
    Fault(CpuFault),
}

/// Device-side bundle: MCU + APEX monitor + SW-Att.
#[derive(Debug)]
pub struct PoxProver {
    /// The simulated device.
    pub platform: Platform,
    /// The CPU core.
    pub cpu: Cpu,
    /// The APEX monitor.
    pub monitor: ApexMonitor,
    swatt: SwAtt,
}

impl PoxProver {
    /// Builds a device around an existing platform state.
    #[must_use]
    pub fn new(platform: Platform, cfg: PoxConfig, keystore: KeyStore) -> Self {
        Self {
            platform,
            cpu: Cpu::new(),
            monitor: ApexMonitor::new(cfg),
            swatt: SwAtt::new(keystore),
        }
    }

    /// Runs until `stop_pc`, feeding every step (and fault) to the monitor
    /// and advancing time-based peripherals.
    ///
    /// Execution is dispatched superblock-at-a-time; the monitor, the
    /// peripheral clock and the trace still observe every single step via
    /// the dispatch callback, in the same order as a `step_into` loop.
    pub fn run_to(&mut self, stop_pc: u16, max_steps: usize) -> RunOutcome {
        let mut trace = Trace::new();
        // One Step reused across the run; only the trace copy survives.
        let mut step = Step::default();
        let mut remaining = max_steps;
        while remaining > 0 {
            if self.cpu.pc() == stop_pc {
                return RunOutcome { trace, stop: StopReason::ReachedStop };
            }
            let monitor = &mut self.monitor;
            let trace_ref = &mut trace;
            let r = self.cpu.step_block_into(
                &mut self.platform,
                stop_pc,
                remaining,
                &mut step,
                |platform, _regs, s| {
                    monitor.observe_step(s);
                    platform.advance(s.cycles);
                    trace_ref.push(*s);
                },
            );
            match r {
                Ok(n) => remaining -= n,
                Err(fault) => {
                    if let CpuFault::Decode { at, .. } = fault {
                        self.monitor.observe_fault(at);
                    }
                    return RunOutcome { trace, stop: StopReason::Fault(fault) };
                }
            }
        }
        RunOutcome { trace, stop: StopReason::StepBudgetExhausted }
    }

    /// Performs a DMA transfer as an external master (attack scenarios),
    /// keeping the monitor in the loop.
    pub fn dma(&mut self, dma: &msp430::periph::Dma) {
        let events = self.platform.dma_transfer(dma);
        self.monitor.observe_dma(&events);
    }

    /// Delivers the current EXEC flag and OR snapshot under the device key —
    /// the `XAtt` step of APEX.
    #[must_use]
    pub fn prove(&self, challenge: &Challenge) -> PoxProof {
        let cfg = *self.monitor.config();
        let exec = self.monitor.exec();
        let mut extra = [0u8; 11];
        extra[..10].copy_from_slice(&cfg.to_metadata_bytes());
        extra[10] = u8::from(exec);
        let tag = self.swatt.attest_with_extra(
            &self.platform,
            challenge,
            &[(cfg.er_min, cfg.er_max), (cfg.or_min, cfg.or_max)],
            &extra,
        );
        let or_data = self.platform.mem_range(cfg.or_min, cfg.or_max).to_vec();
        PoxProof { cfg, exec, or_data, tag }
    }

    /// The monitor's first violation, if any (diagnostics).
    #[must_use]
    pub fn violation(&self) -> Option<Violation> {
        self.monitor.violation()
    }
}

/// Hit/miss counters of an [`ErDigestCache`] at one point in time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DigestCacheStats {
    /// Accesses served from the memoized digest.
    pub hits: u64,
    /// Accesses that (re)computed the digest.
    pub misses: u64,
}

impl DigestCacheStats {
    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of accesses served from the memo (0.0 when never accessed).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Accumulates another cache's counters (fleet-wide aggregation).
    pub fn merge(&mut self, other: DigestCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Memoized SHA-256 digest of a verifier's expected-ER image.
///
/// The expected executable region is a pure function of the op image, so a
/// long-lived verifier computes its digest once and serves every subsequent
/// proof check (scalar or lane-batched) from the memo. The fleet layer
/// invalidates it on op re-registration and epoch rotation; a cache
/// rebuilt after WAL recovery simply starts cold and recomputes once.
///
/// Thread-safe: parallel shard drains share one cache through an `Arc`.
/// The digest is computed under the write lock, so even racing cold
/// accesses count exactly one miss per invalidation cycle.
#[derive(Debug, Default)]
pub struct ErDigestCache {
    digest: RwLock<Option<Digest>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ErDigestCache {
    /// The memoized digest of `bytes`, computing (and counting a miss) only
    /// on first access after construction or [`invalidate`](Self::invalidate).
    fn get_or_compute(&self, bytes: &[u8]) -> Digest {
        let slot = self.digest.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(d) = *slot {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return d;
        }
        drop(slot);
        let mut slot = self.digest.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(d) = *slot {
            // Lost the cold race: another thread already filled the memo.
            self.hits.fetch_add(1, Ordering::Relaxed);
            return d;
        }
        let d = Sha256::digest(bytes);
        *slot = Some(d);
        self.misses.fetch_add(1, Ordering::Relaxed);
        d
    }

    /// Counters so far. Counters accumulate across invalidations (each
    /// invalidation costs exactly one further miss).
    #[must_use]
    pub fn stats(&self) -> DigestCacheStats {
        DigestCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Drops the memoized digest; the next access recomputes it.
    pub fn invalidate(&self) {
        *self.digest.write().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }
}

/// One proof of a lane-batched MAC pre-pass
/// ([`PoxVerifier::precheck_mac_lanes`]).
#[derive(Clone, Copy, Debug)]
pub struct MacCheckItem<'a> {
    /// The proof whose tag to check.
    pub proof: &'a PoxProof,
    /// The challenge it must answer.
    pub challenge: &'a Challenge,
    /// Per-device key override — the same resolution rule as the `ra`
    /// parameter of [`PoxVerifier::check`] (`None` = the key bound at
    /// construction).
    pub ra: Option<&'a RaVerifier>,
}

/// Most items one [`PoxVerifier::precheck_mac_lanes`] call accepts
/// (= [`hacl::sha256_mb::MAX_LANES`]).
pub const MAX_MAC_LANES: usize = sha256_mb::MAX_LANES;

/// Verifier-side PoX check.
///
/// Clones share the expected-ER image (`Arc<[u8]>`) and its digest memo,
/// so registering many engines for one op costs no image copies.
#[derive(Clone, Debug)]
pub struct PoxVerifier {
    ra: RaVerifier,
    expected_er: Arc<[u8]>,
    cfg: PoxConfig,
    er_cache: Arc<ErDigestCache>,
}

impl PoxVerifier {
    /// A verifier expecting `expected_er` (the instrumented executable's
    /// bytes, `er_min..=er_max`) in the configured region.
    #[must_use]
    pub fn new(keystore: KeyStore, cfg: PoxConfig, expected_er: impl Into<Arc<[u8]>>) -> Self {
        Self {
            ra: RaVerifier::new(keystore),
            expected_er: expected_er.into(),
            cfg,
            er_cache: Arc::new(ErDigestCache::default()),
        }
    }

    /// The expected-ER digest memo (shared by clones of this verifier) —
    /// exposed so the fleet layer can read hit rates and invalidate on op
    /// re-registration / epoch rotation.
    #[must_use]
    pub fn er_digest_cache(&self) -> &ErDigestCache {
        &self.er_cache
    }

    /// Checks a proof: correct code, correct regions, EXEC set, and an
    /// authentic OR. Returns a borrow of the verified OR bytes on success
    /// (no per-proof copy — verification is the fleet-scale hot path).
    ///
    /// The tag is checked under `ra` when given — fleet deployments
    /// provision one key per device, so a shared per-operation verifier
    /// checks each proof under that device's key — and under the key bound
    /// at construction otherwise. (Named `check` like
    /// [`RaVerifier::check`], leaving `verify` to the request-based
    /// `Verifier` trait the upper layers implement for this type.)
    ///
    /// # Errors
    ///
    /// Returns the structured [`PoxRejection`] class on failure.
    pub fn check<'p>(
        &self,
        proof: &'p PoxProof,
        challenge: &Challenge,
        ra: Option<&RaVerifier>,
    ) -> Result<&'p [u8], PoxRejection> {
        self.check_with_mac_hint(proof, challenge, ra, None)
    }

    /// [`check`](Self::check) with an optional precomputed MAC verdict.
    ///
    /// All structural checks run unconditionally; only the final tag
    /// comparison is replaced when `mac_ok` is `Some` — the hint must come
    /// from [`precheck_mac_lanes`](Self::precheck_mac_lanes) for this exact
    /// (proof, challenge, key) triple, which computes the identical boolean,
    /// so the verdict is the same either way.
    ///
    /// # Errors
    ///
    /// Returns the structured [`PoxRejection`] class on failure.
    pub fn check_with_mac_hint<'p>(
        &self,
        proof: &'p PoxProof,
        challenge: &Challenge,
        ra: Option<&RaVerifier>,
        mac_ok: Option<bool>,
    ) -> Result<&'p [u8], PoxRejection> {
        let ra = ra.unwrap_or(&self.ra);
        self.check_structure(proof)?;
        let ok = match mac_ok {
            Some(ok) => ok,
            None => {
                // Memoized ER digest + fresh OR digest — kilobytes of ER
                // hashing collapse to one 32-byte absorb per proof.
                let er_digest = self.er_cache.get_or_compute(&self.expected_er);
                let or_digest = Sha256::digest(&proof.or_data);
                ra.check_region_digests(
                    challenge,
                    &[
                        (self.cfg.er_min, self.cfg.er_max, &er_digest),
                        (self.cfg.or_min, self.cfg.or_max, &or_digest),
                    ],
                    &self.extra_bytes(),
                    &proof.tag,
                )
            }
        };
        if ok {
            Ok(&proof.or_data)
        } else {
            Err(PoxRejection::MacMismatch)
        }
    }

    /// Lane-batched MAC pre-pass: checks up to [`MAX_MAC_LANES`] proofs'
    /// tags in multi-buffer HMAC lanes against the memoized expected-ER
    /// digest.
    ///
    /// Per item, `out` receives `Some(mac verdict)` if the proof passed the
    /// structural checks (so a tag was actually compared), `None` otherwise
    /// — feed the `Some`s back through
    /// [`check_with_mac_hint`](Self::check_with_mac_hint); `None`s take the
    /// full path and fail structurally there. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `items` exceeds [`MAX_MAC_LANES`] or `out` is shorter than
    /// `items`.
    pub fn precheck_mac_lanes(&self, items: &[MacCheckItem<'_>], out: &mut [Option<bool>]) {
        assert!(items.len() <= MAX_MAC_LANES, "at most {MAX_MAC_LANES} items per call");
        assert!(out.len() >= items.len(), "one verdict slot per item");
        // Structural pass: only structurally valid proofs get a MAC lane.
        let mut lane_idx = [0usize; MAX_MAC_LANES];
        let mut lanes = 0;
        for (i, item) in items.iter().enumerate() {
            out[i] = None;
            if self.check_structure(item.proof).is_ok() {
                lane_idx[lanes] = i;
                lanes += 1;
            }
        }
        if lanes == 0 {
            return;
        }
        let er_digest = self.er_cache.get_or_compute(&self.expected_er);
        // OR digests for the surviving lanes, hashed in lockstep
        // (structural pass ⇒ all ORs have the op's configured length).
        let mut or_digests = [[0u8; 32]; MAX_MAC_LANES];
        let or_refs: [&[u8]; MAX_MAC_LANES] =
            std::array::from_fn(|s| items[lane_idx[s.min(lanes - 1)]].proof.or_data.as_slice());
        sha256_mb::digest_lanes(&or_refs[..lanes], &mut or_digests[..lanes]);
        // Structural pass ⇒ every surviving proof's cfg equals ours, so the
        // metadata bytes are shared across lanes.
        let extra = self.extra_bytes();
        let mut regions = [[(0u16, 0u16, &er_digest); 2]; MAX_MAC_LANES];
        for s in 0..lanes {
            regions[s] = [
                (self.cfg.er_min, self.cfg.er_max, &er_digest),
                (self.cfg.or_min, self.cfg.or_max, &or_digests[s]),
            ];
        }
        // Duplicate trailing entries (index clamp) are never read: only
        // lanes[..lanes] is passed on.
        let tag_lanes: [TagLane<'_>; MAX_MAC_LANES] = std::array::from_fn(|s| {
            let s = s.min(lanes - 1);
            let item = &items[lane_idx[s]];
            TagLane {
                ra: item.ra.unwrap_or(&self.ra),
                challenge: item.challenge,
                regions: &regions[s],
                extra: &extra,
                tag: &item.proof.tag,
            }
        });
        let mut ok = [false; MAX_MAC_LANES];
        check_tags_lanes(&tag_lanes[..lanes], &mut ok[..lanes]);
        for s in 0..lanes {
            out[lane_idx[s]] = Some(ok[s]);
        }
    }

    /// The structural (non-cryptographic) acceptance checks of
    /// [`check`](Self::check), in rejection-priority order.
    fn check_structure(&self, proof: &PoxProof) -> Result<(), PoxRejection> {
        if proof.cfg != self.cfg {
            return Err(PoxRejection::RegionMismatch);
        }
        if !proof.exec {
            return Err(PoxRejection::ExecClear);
        }
        let er_len = usize::from(self.cfg.er_max - self.cfg.er_min) + 1;
        if self.expected_er.len() != er_len {
            return Err(PoxRejection::ErLengthMismatch);
        }
        if proof.or_data.len() != self.cfg.or_len() {
            return Err(PoxRejection::OrLengthMismatch);
        }
        Ok(())
    }

    /// The metadata bytes bound into every accepted tag (EXEC is 1: proofs
    /// with EXEC clear never reach the MAC).
    fn extra_bytes(&self) -> [u8; 11] {
        let mut extra = [0u8; 11];
        extra[..10].copy_from_slice(&self.cfg.to_metadata_bytes());
        extra[10] = 1;
        extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp430::regs::Reg;
    use msp430_asm::assemble;

    fn build(src_op: &str) -> (PoxProver, PoxVerifier, u16) {
        let img = assemble(src_op).unwrap();
        let (er_min, er_max) = img.extent().unwrap();
        let cfg =
            PoxConfig::new(er_min, er_max, img.symbol("op_end").unwrap(), 0x0600, 0x06FF).unwrap();
        let mut platform = Platform::new();
        img.load_into_platform(&mut platform);
        let caller = assemble(".org 0xF000\n call #0xE000\nhalt: jmp halt\n").unwrap();
        caller.load_into_platform(&mut platform);
        let ks = KeyStore::from_seed(42);

        let mut er_bytes = vec![0u8; usize::from(er_max - er_min) + 1];
        for (a, b) in img.iter() {
            if a >= er_min && a <= er_max {
                er_bytes[usize::from(a - er_min)] = b;
            }
        }
        let prover = {
            let mut p = PoxProver::new(platform, cfg, ks.clone());
            p.cpu.set_reg(Reg::SP, 0x09FE);
            p.cpu.set_pc(0xF000);
            p
        };
        let verifier = PoxVerifier::new(ks, cfg, er_bytes);
        (prover, verifier, caller.symbol("halt").unwrap())
    }

    const OP: &str = ".org 0xE000\nop: mov #0xBEEF, &0x0600\nop_end: ret\n";

    #[test]
    fn honest_run_verifies_and_or_is_returned() {
        let (mut prover, verifier, halt) = build(OP);
        let out = prover.run_to(halt, 1000);
        assert_eq!(out.stop, StopReason::ReachedStop);
        let chal = Challenge::derive(b"pox", 0);
        let proof = prover.prove(&chal);
        let or = verifier.check(&proof, &chal, None).expect("valid proof");
        assert_eq!(u16::from_le_bytes([or[0], or[1]]), 0xBEEF);
    }

    #[test]
    fn without_execution_no_proof() {
        let (prover, verifier, _) = build(OP);
        let chal = Challenge::derive(b"pox", 1);
        let proof = prover.prove(&chal);
        assert_eq!(verifier.check(&proof, &chal, None), Err(PoxRejection::ExecClear));
    }

    #[test]
    fn forged_or_rejected() {
        let (mut prover, verifier, halt) = build(OP);
        prover.run_to(halt, 1000);
        let chal = Challenge::derive(b"pox", 2);
        let mut proof = prover.prove(&chal);
        proof.or_data[0] ^= 1;
        assert!(verifier.check(&proof, &chal, None).is_err());
    }

    #[test]
    fn forged_exec_flag_rejected() {
        // Run illegally (jump into middle), then claim exec=1.
        let (mut prover, verifier, halt) = build(OP);
        prover.cpu.set_pc(0xE002); // skip first instruction → EntryNotAtStart
        prover.run_to(halt, 1000);
        let chal = Challenge::derive(b"pox", 3);
        let mut proof = prover.prove(&chal);
        assert!(!proof.exec);
        proof.exec = true; // forging the flag without the key
        assert!(verifier.check(&proof, &chal, None).is_err(), "flag is MAC-bound");
    }

    #[test]
    fn modified_code_rejected() {
        let (mut prover, verifier, halt) = build(OP);
        // Malware patches the op before execution (writes to ER also clear
        // EXEC, but even a run that somehow kept EXEC would fail the MAC).
        prover.platform.load_words(0xE002, &[0xBEEF ^ 0x1111]);
        prover.run_to(halt, 1000);
        let chal = Challenge::derive(b"pox", 4);
        let proof = prover.prove(&chal);
        assert!(verifier.check(&proof, &chal, None).is_err());
    }

    #[test]
    fn dma_attack_during_run_rejected() {
        let (mut prover, verifier, halt) = build(OP);
        // Enter the op (one caller step + one op step), then DMA mid-run.
        prover.run_to(0xE000, 10);
        let out = prover.run_to(0xE006, 1); // one op instruction
        assert_eq!(out.stop, StopReason::StepBudgetExhausted);
        prover.dma(&msp430::periph::Dma { dst: 0x0604, data: vec![0xFF] });
        prover.run_to(halt, 1000);
        let chal = Challenge::derive(b"pox", 5);
        let proof = prover.prove(&chal);
        assert_eq!(verifier.check(&proof, &chal, None), Err(PoxRejection::ExecClear));
        assert!(matches!(prover.violation(), Some(Violation::DmaDuringExec { .. })));
    }

    #[test]
    fn keyed_verification_uses_the_supplied_key() {
        let (mut prover, verifier, halt) = build(OP);
        prover.run_to(halt, 1000);
        let chal = Challenge::derive(b"pox", 8);
        let proof = prover.prove(&chal);
        // The construction key works when supplied explicitly too...
        let right = RaVerifier::new(KeyStore::from_seed(42));
        assert!(verifier.check(&proof, &chal, Some(&right)).is_ok());
        // ...and a different device's key does not.
        let wrong = RaVerifier::new(KeyStore::from_seed(43));
        assert_eq!(verifier.check(&proof, &chal, Some(&wrong)), Err(PoxRejection::MacMismatch));
    }

    #[test]
    fn precheck_lanes_agree_with_scalar_check() {
        // A mixed batch: honest, forged OR, wrong challenge, EXEC clear
        // (structurally rejected → no MAC lane). The precheck verdicts must
        // reproduce exactly what the scalar path decides.
        let (mut prover, verifier, halt) = build(OP);
        let unexec_proof = prover.prove(&Challenge::derive(b"pre", 9));
        prover.run_to(halt, 1000);
        let chals: Vec<Challenge> = (0..4).map(|i| Challenge::derive(b"pre", i)).collect();
        let mut proofs: Vec<PoxProof> = chals.iter().map(|c| prover.prove(c)).collect();
        proofs[1].or_data[0] ^= 1;
        proofs.push(unexec_proof);
        let wrong_chal = Challenge::derive(b"pre", 99);
        let item_chals = [&chals[0], &chals[1], &wrong_chal, &chals[3], &chals[0]];
        let items: Vec<MacCheckItem<'_>> = proofs
            .iter()
            .zip(item_chals)
            .map(|(proof, challenge)| MacCheckItem { proof, challenge, ra: None })
            .collect();
        let mut out = [None; 5];
        verifier.precheck_mac_lanes(&items, &mut out);
        assert_eq!(out, [Some(true), Some(false), Some(false), Some(true), None]);
        for (i, item) in items.iter().enumerate() {
            let scalar = verifier.check(item.proof, item.challenge, None);
            let hinted = verifier.check_with_mac_hint(item.proof, item.challenge, None, out[i]);
            assert_eq!(scalar, hinted, "item {i}");
        }
    }

    #[test]
    fn er_digest_is_memoized_and_invalidation_recomputes_once() {
        let (mut prover, verifier, halt) = build(OP);
        prover.run_to(halt, 1000);
        for i in 0..5 {
            let chal = Challenge::derive(b"memo", i);
            let proof = prover.prove(&chal);
            assert!(verifier.check(&proof, &chal, None).is_ok());
        }
        let stats = verifier.er_digest_cache().stats();
        assert_eq!(stats.misses, 1, "digest computed exactly once");
        assert_eq!(stats.hits, 4);
        assert!(stats.hit_rate() > 0.7);
        verifier.er_digest_cache().invalidate();
        let chal = Challenge::derive(b"memo", 9);
        let proof = prover.prove(&chal);
        assert!(verifier.check(&proof, &chal, None).is_ok());
        assert_eq!(verifier.er_digest_cache().stats().misses, 2);
    }

    #[test]
    fn replay_rejected() {
        let (mut prover, verifier, halt) = build(OP);
        prover.run_to(halt, 1000);
        let chal0 = Challenge::derive(b"pox", 6);
        let proof = prover.prove(&chal0);
        let chal1 = Challenge::derive(b"pox", 7);
        assert!(verifier.check(&proof, &chal1, None).is_err());
    }
}
