//! The proof-of-execution protocol: device-side runner/quoter and the
//! verifier-side check.

use crate::metadata::PoxConfig;
use crate::monitor::ApexMonitor;
use crate::violation::Violation;
use hacl::Digest;
use msp430::cpu::{Cpu, CpuFault, Step};
use msp430::platform::Platform;
use msp430::trace::Trace;
use serde::{Deserialize, Serialize};
use std::fmt;
use vrased::{Challenge, KeyStore, RaVerifier, SwAtt};

/// Why a [`PoxVerifier`] rejected a proof.
///
/// Every cryptographic / structural failure class gets its own variant so
/// upper layers (and wire codecs) can match on the cause instead of
/// comparing strings; [`fmt::Display`] renders the operator-facing text.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PoxRejection {
    /// The proof's region metadata differs from what the verifier expects.
    RegionMismatch,
    /// The EXEC flag was clear: the operation was not executed untouched
    /// from entry to exit, so there is no valid proof of execution.
    ExecClear,
    /// The verifier's expected ER image does not span the configured
    /// executable region (verifier misconfiguration, not device fault).
    ErLengthMismatch,
    /// The claimed OR snapshot does not span the configured output region.
    OrLengthMismatch,
    /// The MAC did not verify: wrong key or challenge, or tampered code /
    /// output / metadata / EXEC flag.
    MacMismatch,
}

impl fmt::Display for PoxRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PoxRejection::RegionMismatch => "region metadata mismatch",
            PoxRejection::ExecClear => "EXEC flag clear: no valid proof of execution",
            PoxRejection::ErLengthMismatch => "expected ER image length mismatch",
            PoxRejection::OrLengthMismatch => "OR snapshot length mismatch",
            PoxRejection::MacMismatch => "MAC verification failed (code or output tampered)",
        })
    }
}

impl std::error::Error for PoxRejection {}

/// A proof of execution as shipped to the verifier.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PoxProof {
    /// Region metadata the proof speaks about.
    pub cfg: PoxConfig,
    /// The EXEC flag at quote time.
    pub exec: bool,
    /// Claimed OR contents (the attested output, e.g. CF-Log + I-Log).
    pub or_data: Vec<u8>,
    /// HMAC over challenge ‖ ER ‖ OR ‖ metadata ‖ EXEC.
    pub tag: Digest,
}

/// Outcome of running one attested operation on the device.
#[derive(Debug)]
pub struct RunOutcome {
    /// Execution trace (instructions, cycles, bus events).
    pub trace: Trace,
    /// Why the run stopped.
    pub stop: StopReason,
}

/// Why [`PoxProver::run_to`] returned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StopReason {
    /// PC reached the requested stop address.
    ReachedStop,
    /// The step budget ran out (e.g. an instrumentation abort spin-loop).
    StepBudgetExhausted,
    /// The CPU faulted.
    Fault(CpuFault),
}

/// Device-side bundle: MCU + APEX monitor + SW-Att.
#[derive(Debug)]
pub struct PoxProver {
    /// The simulated device.
    pub platform: Platform,
    /// The CPU core.
    pub cpu: Cpu,
    /// The APEX monitor.
    pub monitor: ApexMonitor,
    swatt: SwAtt,
}

impl PoxProver {
    /// Builds a device around an existing platform state.
    #[must_use]
    pub fn new(platform: Platform, cfg: PoxConfig, keystore: KeyStore) -> Self {
        Self {
            platform,
            cpu: Cpu::new(),
            monitor: ApexMonitor::new(cfg),
            swatt: SwAtt::new(keystore),
        }
    }

    /// Runs until `stop_pc`, feeding every step (and fault) to the monitor
    /// and advancing time-based peripherals.
    pub fn run_to(&mut self, stop_pc: u16, max_steps: usize) -> RunOutcome {
        let mut trace = Trace::new();
        // One Step reused across the run; only the trace copy survives.
        let mut step = Step::default();
        for _ in 0..max_steps {
            if self.cpu.pc() == stop_pc {
                return RunOutcome { trace, stop: StopReason::ReachedStop };
            }
            match self.cpu.step_into(&mut self.platform, &mut step) {
                Ok(()) => {
                    self.monitor.observe_step(&step);
                    self.platform.advance(step.cycles);
                    trace.push(step);
                }
                Err(fault) => {
                    if let CpuFault::Decode { at, .. } = fault {
                        self.monitor.observe_fault(at);
                    }
                    return RunOutcome { trace, stop: StopReason::Fault(fault) };
                }
            }
        }
        RunOutcome { trace, stop: StopReason::StepBudgetExhausted }
    }

    /// Performs a DMA transfer as an external master (attack scenarios),
    /// keeping the monitor in the loop.
    pub fn dma(&mut self, dma: &msp430::periph::Dma) {
        let events = self.platform.dma_transfer(dma);
        self.monitor.observe_dma(&events);
    }

    /// Delivers the current EXEC flag and OR snapshot under the device key —
    /// the `XAtt` step of APEX.
    #[must_use]
    pub fn prove(&self, challenge: &Challenge) -> PoxProof {
        let cfg = *self.monitor.config();
        let exec = self.monitor.exec();
        let mut extra = [0u8; 11];
        extra[..10].copy_from_slice(&cfg.to_metadata_bytes());
        extra[10] = u8::from(exec);
        let tag = self.swatt.attest_with_extra(
            &self.platform,
            challenge,
            &[(cfg.er_min, cfg.er_max), (cfg.or_min, cfg.or_max)],
            &extra,
        );
        let or_data = self.platform.mem_range(cfg.or_min, cfg.or_max).to_vec();
        PoxProof { cfg, exec, or_data, tag }
    }

    /// The monitor's first violation, if any (diagnostics).
    #[must_use]
    pub fn violation(&self) -> Option<Violation> {
        self.monitor.violation()
    }
}

/// Verifier-side PoX check.
#[derive(Clone, Debug)]
pub struct PoxVerifier {
    ra: RaVerifier,
    expected_er: Vec<u8>,
    cfg: PoxConfig,
}

impl PoxVerifier {
    /// A verifier expecting `expected_er` (the instrumented executable's
    /// bytes, `er_min..=er_max`) in the configured region.
    #[must_use]
    pub fn new(keystore: KeyStore, cfg: PoxConfig, expected_er: Vec<u8>) -> Self {
        Self { ra: RaVerifier::new(keystore), expected_er, cfg }
    }

    /// Checks a proof: correct code, correct regions, EXEC set, and an
    /// authentic OR. Returns a borrow of the verified OR bytes on success
    /// (no per-proof copy — verification is the fleet-scale hot path).
    ///
    /// The tag is checked under `ra` when given — fleet deployments
    /// provision one key per device, so a shared per-operation verifier
    /// checks each proof under that device's key — and under the key bound
    /// at construction otherwise. (Named `check` like
    /// [`RaVerifier::check`], leaving `verify` to the request-based
    /// `Verifier` trait the upper layers implement for this type.)
    ///
    /// # Errors
    ///
    /// Returns the structured [`PoxRejection`] class on failure.
    pub fn check<'p>(
        &self,
        proof: &'p PoxProof,
        challenge: &Challenge,
        ra: Option<&RaVerifier>,
    ) -> Result<&'p [u8], PoxRejection> {
        let ra = ra.unwrap_or(&self.ra);
        if proof.cfg != self.cfg {
            return Err(PoxRejection::RegionMismatch);
        }
        if !proof.exec {
            return Err(PoxRejection::ExecClear);
        }
        let er_len = usize::from(self.cfg.er_max - self.cfg.er_min) + 1;
        if self.expected_er.len() != er_len {
            return Err(PoxRejection::ErLengthMismatch);
        }
        if proof.or_data.len() != self.cfg.or_len() {
            return Err(PoxRejection::OrLengthMismatch);
        }
        // Check the tag directly against the expected region bytes — no
        // 64 KiB expected-memory image is rebuilt per proof.
        let mut extra = [0u8; 11];
        extra[..10].copy_from_slice(&self.cfg.to_metadata_bytes());
        extra[10] = 1;
        let ok = ra.check_region_bytes(
            challenge,
            &[
                (self.cfg.er_min, self.cfg.er_max, self.expected_er.as_slice()),
                (self.cfg.or_min, self.cfg.or_max, proof.or_data.as_slice()),
            ],
            &extra,
            &proof.tag,
        );
        if ok {
            Ok(&proof.or_data)
        } else {
            Err(PoxRejection::MacMismatch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp430::regs::Reg;
    use msp430_asm::assemble;

    fn build(src_op: &str) -> (PoxProver, PoxVerifier, u16) {
        let img = assemble(src_op).unwrap();
        let (er_min, er_max) = img.extent().unwrap();
        let cfg =
            PoxConfig::new(er_min, er_max, img.symbol("op_end").unwrap(), 0x0600, 0x06FF).unwrap();
        let mut platform = Platform::new();
        img.load_into_platform(&mut platform);
        let caller = assemble(".org 0xF000\n call #0xE000\nhalt: jmp halt\n").unwrap();
        caller.load_into_platform(&mut platform);
        let ks = KeyStore::from_seed(42);

        let mut er_bytes = vec![0u8; usize::from(er_max - er_min) + 1];
        for (a, b) in img.iter() {
            if a >= er_min && a <= er_max {
                er_bytes[usize::from(a - er_min)] = b;
            }
        }
        let prover = {
            let mut p = PoxProver::new(platform, cfg, ks.clone());
            p.cpu.set_reg(Reg::SP, 0x09FE);
            p.cpu.set_pc(0xF000);
            p
        };
        let verifier = PoxVerifier::new(ks, cfg, er_bytes);
        (prover, verifier, caller.symbol("halt").unwrap())
    }

    const OP: &str = ".org 0xE000\nop: mov #0xBEEF, &0x0600\nop_end: ret\n";

    #[test]
    fn honest_run_verifies_and_or_is_returned() {
        let (mut prover, verifier, halt) = build(OP);
        let out = prover.run_to(halt, 1000);
        assert_eq!(out.stop, StopReason::ReachedStop);
        let chal = Challenge::derive(b"pox", 0);
        let proof = prover.prove(&chal);
        let or = verifier.check(&proof, &chal, None).expect("valid proof");
        assert_eq!(u16::from_le_bytes([or[0], or[1]]), 0xBEEF);
    }

    #[test]
    fn without_execution_no_proof() {
        let (prover, verifier, _) = build(OP);
        let chal = Challenge::derive(b"pox", 1);
        let proof = prover.prove(&chal);
        assert_eq!(verifier.check(&proof, &chal, None), Err(PoxRejection::ExecClear));
    }

    #[test]
    fn forged_or_rejected() {
        let (mut prover, verifier, halt) = build(OP);
        prover.run_to(halt, 1000);
        let chal = Challenge::derive(b"pox", 2);
        let mut proof = prover.prove(&chal);
        proof.or_data[0] ^= 1;
        assert!(verifier.check(&proof, &chal, None).is_err());
    }

    #[test]
    fn forged_exec_flag_rejected() {
        // Run illegally (jump into middle), then claim exec=1.
        let (mut prover, verifier, halt) = build(OP);
        prover.cpu.set_pc(0xE002); // skip first instruction → EntryNotAtStart
        prover.run_to(halt, 1000);
        let chal = Challenge::derive(b"pox", 3);
        let mut proof = prover.prove(&chal);
        assert!(!proof.exec);
        proof.exec = true; // forging the flag without the key
        assert!(verifier.check(&proof, &chal, None).is_err(), "flag is MAC-bound");
    }

    #[test]
    fn modified_code_rejected() {
        let (mut prover, verifier, halt) = build(OP);
        // Malware patches the op before execution (writes to ER also clear
        // EXEC, but even a run that somehow kept EXEC would fail the MAC).
        prover.platform.load_words(0xE002, &[0xBEEF ^ 0x1111]);
        prover.run_to(halt, 1000);
        let chal = Challenge::derive(b"pox", 4);
        let proof = prover.prove(&chal);
        assert!(verifier.check(&proof, &chal, None).is_err());
    }

    #[test]
    fn dma_attack_during_run_rejected() {
        let (mut prover, verifier, halt) = build(OP);
        // Enter the op (one caller step + one op step), then DMA mid-run.
        prover.run_to(0xE000, 10);
        let out = prover.run_to(0xE006, 1); // one op instruction
        assert_eq!(out.stop, StopReason::StepBudgetExhausted);
        prover.dma(&msp430::periph::Dma { dst: 0x0604, data: vec![0xFF] });
        prover.run_to(halt, 1000);
        let chal = Challenge::derive(b"pox", 5);
        let proof = prover.prove(&chal);
        assert_eq!(verifier.check(&proof, &chal, None), Err(PoxRejection::ExecClear));
        assert!(matches!(prover.violation(), Some(Violation::DmaDuringExec { .. })));
    }

    #[test]
    fn keyed_verification_uses_the_supplied_key() {
        let (mut prover, verifier, halt) = build(OP);
        prover.run_to(halt, 1000);
        let chal = Challenge::derive(b"pox", 8);
        let proof = prover.prove(&chal);
        // The construction key works when supplied explicitly too...
        let right = RaVerifier::new(KeyStore::from_seed(42));
        assert!(verifier.check(&proof, &chal, Some(&right)).is_ok());
        // ...and a different device's key does not.
        let wrong = RaVerifier::new(KeyStore::from_seed(43));
        assert_eq!(verifier.check(&proof, &chal, Some(&wrong)), Err(PoxRejection::MacMismatch));
    }

    #[test]
    fn replay_rejected() {
        let (mut prover, verifier, halt) = build(OP);
        prover.run_to(halt, 1000);
        let chal0 = Challenge::derive(b"pox", 6);
        let proof = prover.prove(&chal0);
        let chal1 = Challenge::derive(b"pox", 7);
        assert!(verifier.check(&proof, &chal1, None).is_err());
    }
}
