//! EXEC-invalidating events.

use std::fmt;

/// Why the APEX monitor cleared (or never set) the EXEC flag.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Violation {
    /// Control entered ER at an address other than `er_min`.
    EntryNotAtStart {
        /// Where control actually entered.
        at: u16,
    },
    /// Control left ER from an instruction other than the designated exit.
    ExitNotAtEnd {
        /// Address of the instruction that left ER.
        from: u16,
        /// Where control went.
        to: u16,
    },
    /// An interrupt was serviced while executing inside ER.
    IrqDuringExec {
        /// Vector number.
        vector: u8,
    },
    /// DMA activity while executing inside ER.
    DmaDuringExec {
        /// First DMA-touched address.
        addr: u16,
    },
    /// A write landed inside ER (self-modification or external).
    WriteToEr {
        /// Target address.
        addr: u16,
    },
    /// OR was written by code outside ER, or outside the execution window.
    OrWriteOutsideExec {
        /// Target address.
        addr: u16,
        /// PC of the writer (`None` for DMA).
        pc: Option<u16>,
    },
    /// The CPU faulted (invalid opcode) inside ER.
    FaultInEr {
        /// Fault address.
        at: u16,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::EntryNotAtStart { at } => write!(f, "entry into ER at {at:#06x} ≠ er_min"),
            Violation::ExitNotAtEnd { from, to } => {
                write!(f, "exit from ER at {from:#06x} → {to:#06x} before completion")
            }
            Violation::IrqDuringExec { vector } => {
                write!(f, "interrupt {vector} serviced during attested execution")
            }
            Violation::DmaDuringExec { addr } => {
                write!(f, "dma touched {addr:#06x} during attested execution")
            }
            Violation::WriteToEr { addr } => write!(f, "write into ER at {addr:#06x}"),
            Violation::OrWriteOutsideExec { addr, pc } => match pc {
                Some(pc) => write!(f, "OR write at {addr:#06x} from pc {pc:#06x} outside ER"),
                None => write!(f, "OR write at {addr:#06x} by DMA"),
            },
            Violation::FaultInEr { at } => write!(f, "cpu fault inside ER at {at:#06x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_are_informative() {
        let v = Violation::ExitNotAtEnd { from: 0xE010, to: 0xF000 };
        assert!(v.to_string().contains("0xe010"));
        let v = Violation::OrWriteOutsideExec { addr: 0x600, pc: None };
        assert!(v.to_string().contains("DMA"));
    }
}
