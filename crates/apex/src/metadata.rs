//! PoX configuration metadata: the ER/OR region bounds.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Region bounds for one attested operation.
///
/// All addresses are inclusive. `er_exit` is the address of the designated
/// last instruction of ER (its `ret`); APEX accepts an execution as complete
/// only if control leaves ER from there.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PoxConfig {
    /// First address of the Executable Range.
    pub er_min: u16,
    /// Last address of the Executable Range (inclusive).
    pub er_max: u16,
    /// Address of the legal exit instruction.
    pub er_exit: u16,
    /// First address of the Output Range.
    pub or_min: u16,
    /// Last address of the Output Range (inclusive, word-aligned).
    pub or_max: u16,
}

/// Invalid [`PoxConfig`] parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConfigError(&'static str);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid PoX config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl PoxConfig {
    /// Validates and builds a configuration.
    ///
    /// # Errors
    ///
    /// Rejects empty or overlapping regions, odd alignment, and an exit
    /// address outside ER.
    pub fn new(
        er_min: u16,
        er_max: u16,
        er_exit: u16,
        or_min: u16,
        or_max: u16,
    ) -> Result<Self, ConfigError> {
        if er_min >= er_max {
            return Err(ConfigError("ER empty"));
        }
        if or_min >= or_max {
            return Err(ConfigError("OR empty"));
        }
        if er_min & 1 != 0 || or_min & 1 != 0 {
            return Err(ConfigError("region start must be even"));
        }
        // OR is a downward-growing stack of 16-bit log slots; an even
        // (word-aligned) `or_max` would leave a dangling half-slot whose
        // second byte lies past the region — the verifier's `OrStack`
        // would then read one byte beyond any snapshot that exactly covers
        // the region. OR must be a whole number of word slots.
        if or_max & 1 == 0 {
            return Err(ConfigError("OR end must be odd (whole word slots)"));
        }
        if er_exit < er_min || er_exit > er_max {
            return Err(ConfigError("exit address outside ER"));
        }
        if er_exit & 1 != 0 {
            return Err(ConfigError("exit address must be even"));
        }
        let overlap = er_min <= or_max && or_min <= er_max;
        if overlap {
            return Err(ConfigError("ER and OR overlap"));
        }
        Ok(Self { er_min, er_max, er_exit, or_min, or_max })
    }

    /// Is `addr` inside ER?
    #[must_use]
    pub fn in_er(&self, addr: u16) -> bool {
        addr >= self.er_min && addr <= self.er_max
    }

    /// Is `addr` inside OR?
    #[must_use]
    pub fn in_or(&self, addr: u16) -> bool {
        addr >= self.or_min && addr <= self.or_max
    }

    /// OR capacity in bytes.
    #[must_use]
    pub fn or_len(&self) -> usize {
        usize::from(self.or_max - self.or_min) + 1
    }

    /// Serialises the bounds for inclusion in the attested byte string.
    #[must_use]
    pub fn to_metadata_bytes(&self) -> [u8; 10] {
        let mut out = [0u8; 10];
        out[0..2].copy_from_slice(&self.er_min.to_le_bytes());
        out[2..4].copy_from_slice(&self.er_max.to_le_bytes());
        out[4..6].copy_from_slice(&self.er_exit.to_le_bytes());
        out[6..8].copy_from_slice(&self.or_min.to_le_bytes());
        out[8..10].copy_from_slice(&self.or_max.to_le_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config() {
        let c = PoxConfig::new(0xE000, 0xE0FF, 0xE0FE, 0x0600, 0x06FF).unwrap();
        assert!(c.in_er(0xE000) && c.in_er(0xE0FF) && !c.in_er(0xE100));
        assert!(c.in_or(0x0600) && c.in_or(0x06FF) && !c.in_or(0x0700));
        assert_eq!(c.or_len(), 0x100);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(PoxConfig::new(0xE100, 0xE000, 0xE000, 0x600, 0x6FF).is_err(), "ER empty");
        assert!(PoxConfig::new(0xE000, 0xE0FF, 0xE0FE, 0x6FF, 0x600).is_err(), "OR empty");
        assert!(PoxConfig::new(0xE001, 0xE0FF, 0xE0FE, 0x600, 0x6FF).is_err(), "odd ER");
        assert!(PoxConfig::new(0xE000, 0xE0FF, 0xF000, 0x600, 0x6FF).is_err(), "exit outside");
        assert!(PoxConfig::new(0x0500, 0x07FF, 0x0700, 0x600, 0x6FF).is_err(), "overlap");
    }

    #[test]
    fn rejects_even_or_max() {
        // Regression: an even `or_max` passed validation but truncated the
        // top log slot to a single byte, which the verifier's `OrStack`
        // read one past the end of an exact-length OR snapshot.
        let err = PoxConfig::new(0xE000, 0xE0FF, 0xE0FE, 0x0600, 0x06FE).unwrap_err();
        assert!(err.to_string().contains("OR end must be odd"), "{err}");
    }

    #[test]
    fn metadata_bytes_round_trip_fields() {
        let c = PoxConfig::new(0xE000, 0xE0FF, 0xE0FE, 0x0600, 0x06FF).unwrap();
        let b = c.to_metadata_bytes();
        assert_eq!(u16::from_le_bytes([b[0], b[1]]), 0xE000);
        assert_eq!(u16::from_le_bytes([b[8], b[9]]), 0x06FF);
    }
}
