//! APEX: a verified architecture for proofs of execution (PoX) — simulator
//! port.
//!
//! APEX (USENIX Security'20) adds a small hardware monitor next to a
//! VRASED-equipped MSP430. The monitor maintains a 1-bit `EXEC` flag with
//! the following contract: **`EXEC = 1` after execution iff the code in the
//! Executable Range (ER) ran from its first instruction to its last with no
//! interference, and nothing but that code wrote the Output Range (OR)**.
//! Attesting `ER ‖ OR ‖ EXEC` under the VRASED key then proves to the
//! verifier that exactly this code produced exactly this output.
//!
//! Tiny-CFA and DIALED lean entirely on this: their instrumentation writes
//! CF-Log/I-Log into OR, and APEX makes those logs unforgeable.
//!
//! # What the monitor watches
//!
//! The Verilog monitor taps the PC, the data-bus address/enables, the IRQ
//! and DMA lines. Our port consumes the identical information from
//! [`msp430::cpu::Step`] records and DMA event lists — one FSM evaluation
//! per executed instruction (the simulator's atomic unit, matching the
//! openMSP430 whose memory operations complete within an instruction).
//!
//! The EXEC-invalidating events (each mapped to a [`Violation`]):
//!
//! 1. executing inside ER without having entered at `er_min`;
//! 2. leaving ER from any instruction other than the designated exit;
//! 3. an interrupt taken while inside ER;
//! 4. any DMA activity while inside ER;
//! 5. a write into ER at any time (code is immutable while armed);
//! 6. a write into OR by anything other than ER code during execution.
//!
//! # Example
//!
//! ```
//! use apex::{metadata::PoxConfig, monitor::ApexMonitor};
//! use msp430::{cpu::Cpu, platform::Platform, mem::Bus, regs::Reg};
//!
//! let cfg = PoxConfig::new(0xE000, 0xE003, 0xE002, 0x0600, 0x06FF)?;
//! let mut platform = Platform::new();
//! platform.load_words(0xE000, &[0x4303, 0x4130]); // nop ; ret
//! let mut cpu = Cpu::new();
//! cpu.set_reg(Reg::SP, 0x09FE);
//! platform.write_word(0x09FE, 0xF000);            // return address
//! cpu.set_pc(0xE000);
//!
//! let mut mon = ApexMonitor::new(cfg);
//! while cpu.pc() != 0xF000 {
//!     let step = cpu.step(&mut platform)?;
//!     mon.observe_step(&step);
//! }
//! assert!(mon.exec());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metadata;
pub mod monitor;
pub mod pox;
pub mod violation;

pub use metadata::PoxConfig;
pub use monitor::ApexMonitor;
pub use pox::{
    DigestCacheStats, ErDigestCache, MacCheckItem, PoxProof, PoxProver, PoxRejection, PoxVerifier,
};
pub use violation::Violation;
