//! The APEX hardware monitor, ported as a per-instruction FSM.
//!
//! The FSM has three phases and one output bit (`EXEC`):
//!
//! ```text
//!            step at er_min                 exit from er_exit
//!   Idle ───────────────────▶ Running ───────────────────────▶ Done
//!    ▲                          │                               │
//!    └───────── any violation ──┴────── OR/ER tampering ────────┘
//!                      (EXEC := 0)
//! ```
//!
//! `EXEC` is set on legal entry and survives into `Done`; every violation
//! clears it and returns the FSM to `Idle`. The attestation quote binds the
//! flag, so a cleared flag is visible to the verifier.

use crate::metadata::PoxConfig;
use crate::violation::Violation;
use msp430::cpu::Step;
use msp430::mem::Access;

/// Monitor phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// No attested execution in progress.
    Idle,
    /// Executing inside ER with EXEC tentatively set.
    Running,
    /// Execution completed legally; EXEC latched (until tampering).
    Done,
}

/// The APEX monitor.
#[derive(Clone, Debug)]
pub struct ApexMonitor {
    cfg: PoxConfig,
    phase: Phase,
    exec: bool,
    violation: Option<Violation>,
}

impl ApexMonitor {
    /// A monitor armed with `cfg`, in `Idle` with EXEC clear.
    #[must_use]
    pub fn new(cfg: PoxConfig) -> Self {
        Self { cfg, phase: Phase::Idle, exec: false, violation: None }
    }

    /// The configured regions.
    #[must_use]
    pub fn config(&self) -> &PoxConfig {
        &self.cfg
    }

    /// Current phase.
    #[must_use]
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The EXEC flag as the attestation quote would report it now.
    ///
    /// While the monitor is still in `Running` the operation has not
    /// completed — a quote taken then (only possible if the op hung, e.g.
    /// in an instrumentation abort spin) must not claim a finished
    /// execution, so this reports `false` until the legal exit.
    #[must_use]
    pub fn exec(&self) -> bool {
        self.exec && self.phase != Phase::Running
    }

    /// First violation since the last reset, if any.
    #[must_use]
    pub fn violation(&self) -> Option<Violation> {
        self.violation
    }

    /// Clears state for a fresh run (like rebooting the monitor).
    pub fn reset(&mut self) {
        self.phase = Phase::Idle;
        self.exec = false;
        self.violation = None;
    }

    fn violate(&mut self, v: Violation) {
        if self.violation.is_none() {
            self.violation = Some(v);
        }
        self.exec = false;
        self.phase = Phase::Idle;
    }

    /// Feeds one executed CPU step (instruction or interrupt entry).
    pub fn observe_step(&mut self, step: &Step) {
        // Interrupt entries execute no ER instruction; they only matter as a
        // violation during Running, plus their stack pushes hit the bus.
        if let Some(vector) = step.irq {
            if self.phase == Phase::Running {
                self.violate(Violation::IrqDuringExec { vector });
            }
            self.check_writes(step, false);
            return;
        }

        // Phase entry transitions keyed on the executed instruction address.
        let pc_in_er = self.cfg.in_er(step.pc);
        match self.phase {
            Phase::Idle | Phase::Done => {
                if pc_in_er {
                    if step.pc == self.cfg.er_min {
                        self.phase = Phase::Running;
                        self.exec = true;
                        self.violation = None;
                    } else {
                        self.violate(Violation::EntryNotAtStart { at: step.pc });
                    }
                }
            }
            Phase::Running => {
                if !pc_in_er {
                    // Defensive: callers normally cannot reach this (the
                    // exit transition below fires first).
                    self.violate(Violation::ExitNotAtEnd { from: step.pc, to: step.pc });
                }
            }
        }

        let attested_writer = self.phase == Phase::Running && self.cfg.in_er(step.pc);
        self.check_writes(step, attested_writer);

        // Exit transition.
        if self.phase == Phase::Running && !self.cfg.in_er(step.next_pc) {
            if step.pc == self.cfg.er_exit {
                self.phase = Phase::Done;
            } else {
                self.violate(Violation::ExitNotAtEnd { from: step.pc, to: step.next_pc });
            }
        }
    }

    /// Feeds DMA bus events (DMA is an independent bus master).
    pub fn observe_dma(&mut self, events: &[Access]) {
        if events.is_empty() {
            return;
        }
        if self.phase == Phase::Running {
            self.violate(Violation::DmaDuringExec { addr: events[0].addr });
            return;
        }
        for a in events {
            if self.touches_er(a) {
                self.violate(Violation::WriteToEr { addr: a.addr });
            } else if self.touches_or(a) {
                self.violate(Violation::OrWriteOutsideExec { addr: a.addr, pc: None });
            }
        }
    }

    /// Reports a CPU fault at `at` (invalid opcode); inside ER this aborts
    /// the attested execution.
    pub fn observe_fault(&mut self, at: u16) {
        if self.phase == Phase::Running {
            self.violate(Violation::FaultInEr { at });
        }
    }

    fn touches_er(&self, a: &Access) -> bool {
        self.cfg.in_er(a.addr) || (a.word && self.cfg.in_er(a.addr.wrapping_add(1)))
    }

    fn touches_or(&self, a: &Access) -> bool {
        self.cfg.in_or(a.addr) || (a.word && self.cfg.in_or(a.addr.wrapping_add(1)))
    }

    fn check_writes(&mut self, step: &Step, attested_writer: bool) {
        // Iterates the step's inline access buffer directly — no temporary.
        for w in step.writes() {
            if self.touches_er(w) {
                self.violate(Violation::WriteToEr { addr: w.addr });
            } else if self.touches_or(w) && !attested_writer {
                self.violate(Violation::OrWriteOutsideExec { addr: w.addr, pc: Some(step.pc) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp430::cpu::Cpu;
    use msp430::mem::Bus;
    use msp430::platform::Platform;
    use msp430_asm::assemble;

    const ER_MIN: u16 = 0xE000;
    const OR_MIN: u16 = 0x0600;
    const OR_MAX: u16 = 0x06FF;

    /// Assembles an operation whose last instruction is `ret`, places a
    /// caller at 0xF000 and runs it under the monitor.
    fn run_op(body: &str, caller_tamper: Option<&str>) -> (ApexMonitor, Cpu, Platform) {
        let src = format!(".org 0xE000\nop_start:\n{body}\nop_end: ret\n");
        let img = assemble(&src).unwrap();
        let (_, er_max_addr) = img.extent().unwrap();
        let er_exit = img.symbol("op_end").unwrap();
        let cfg = PoxConfig::new(ER_MIN, er_max_addr, er_exit, OR_MIN, OR_MAX).unwrap();

        let mut platform = Platform::new();
        img.load_into_platform(&mut platform);
        // Caller stub: call #op ; (optional tamper code) ; jmp $
        let caller = format!(
            ".org 0xF000\n call #0xE000\n{}\nhalt: jmp halt\n",
            caller_tamper.unwrap_or("")
        );
        let cimg = assemble(&caller).unwrap();
        cimg.load_into_platform(&mut platform);

        let mut cpu = Cpu::new();
        cpu.set_reg(msp430::Reg::SP, 0x09FE);
        cpu.set_pc(0xF000);
        let mut mon = ApexMonitor::new(cfg);
        let halt = cimg.symbol("halt").unwrap();
        for _ in 0..10_000 {
            if cpu.pc() == halt {
                break;
            }
            match cpu.step(&mut platform) {
                Ok(step) => mon.observe_step(&step),
                Err(msp430::CpuFault::Decode { at, .. }) => {
                    mon.observe_fault(at);
                    break;
                }
                Err(_) => break,
            }
        }
        (mon, cpu, platform)
    }

    #[test]
    fn honest_run_sets_exec() {
        let (mon, _, platform) = run_op(" mov #0x1234, r5\n mov r5, &0x0600\n", None);
        assert_eq!(mon.violation(), None);
        assert!(mon.exec());
        assert_eq!(mon.phase(), Phase::Done);
        let mut p = platform;
        assert_eq!(p.read_word(0x0600), 0x1234);
    }

    #[test]
    fn entry_into_middle_clears_exec() {
        // Caller jumps past the first instruction of ER.
        let src = ".org 0xE000\nop: nop\n nop\nop_end: ret\n";
        let img = assemble(src).unwrap();
        let (_, er_max) = img.extent().unwrap();
        let cfg =
            PoxConfig::new(ER_MIN, er_max, img.symbol("op_end").unwrap(), OR_MIN, OR_MAX).unwrap();
        let mut platform = Platform::new();
        img.load_into_platform(&mut platform);
        let cimg = assemble(".org 0xF000\n call #0xE002\nhalt: jmp halt\n").unwrap();
        cimg.load_into_platform(&mut platform);
        let mut cpu = Cpu::new();
        cpu.set_reg(msp430::Reg::SP, 0x09FE);
        cpu.set_pc(0xF000);
        let mut mon = ApexMonitor::new(cfg);
        for _ in 0..100 {
            if cpu.pc() == 0xF004 {
                break;
            }
            let s = cpu.step(&mut platform).unwrap();
            mon.observe_step(&s);
        }
        assert!(!mon.exec());
        assert!(matches!(mon.violation(), Some(Violation::EntryNotAtStart { at: 0xE002 })));
    }

    #[test]
    fn early_exit_clears_exec() {
        // Op jumps straight out of ER before its legal exit.
        let (mon, _, _) = run_op(" br #0xF004\n nop\n", None);
        assert!(!mon.exec());
        assert!(matches!(mon.violation(), Some(Violation::ExitNotAtEnd { .. })));
    }

    #[test]
    fn or_write_after_done_clears_exec() {
        let (mon, _, _) = run_op(" mov #7, &0x0600\n", Some(" mov #0xBAD, &0x0600\n"));
        assert!(!mon.exec(), "post-hoc OR tamper must clear EXEC");
        assert!(matches!(
            mon.violation(),
            Some(Violation::OrWriteOutsideExec { addr: 0x0600, pc: Some(_) })
        ));
    }

    #[test]
    fn or_write_before_entry_is_not_fatal_to_later_run() {
        // Tamper first, then a clean full run: EXEC reflects the clean run.
        let src = ".org 0xF000\n mov #0xBAD, &0x0600\n call #0xE000\nhalt: jmp halt\n";
        let img_op = assemble(".org 0xE000\nop: mov #7, &0x0600\nop_end: ret\n").unwrap();
        let (_, er_max) = img_op.extent().unwrap();
        let cfg = PoxConfig::new(ER_MIN, er_max, img_op.symbol("op_end").unwrap(), OR_MIN, OR_MAX)
            .unwrap();
        let mut platform = Platform::new();
        img_op.load_into_platform(&mut platform);
        let cimg = assemble(src).unwrap();
        cimg.load_into_platform(&mut platform);
        let mut cpu = Cpu::new();
        cpu.set_reg(msp430::Reg::SP, 0x09FE);
        cpu.set_pc(0xF000);
        let mut mon = ApexMonitor::new(cfg);
        let halt = cimg.symbol("halt").unwrap();
        for _ in 0..100 {
            if cpu.pc() == halt {
                break;
            }
            let s = cpu.step(&mut platform).unwrap();
            mon.observe_step(&s);
        }
        assert!(mon.exec(), "a full clean run after tampering re-sets EXEC");
    }

    #[test]
    fn irq_during_exec_clears_exec() {
        let src = ".org 0xE000\nop: eint\n nop\n nop\nop_end: ret\n";
        let img = assemble(src).unwrap();
        let (_, er_max) = img.extent().unwrap();
        let cfg =
            PoxConfig::new(ER_MIN, er_max, img.symbol("op_end").unwrap(), OR_MIN, OR_MAX).unwrap();
        let mut platform = Platform::new();
        img.load_into_platform(&mut platform);
        platform.load_words(0xFFE0 + 2 * 9, &[0xF800]);
        platform.load_words(0xF800, &[0x1300]); // reti
        let mut cpu = Cpu::new();
        cpu.set_reg(msp430::Reg::SP, 0x09FE);
        cpu.set_pc(0xE000);
        let mut mon = ApexMonitor::new(cfg);
        mon.observe_step(&cpu.step(&mut platform).unwrap()); // eint (entry)
        cpu.raise_irq(9);
        mon.observe_step(&cpu.step(&mut platform).unwrap()); // irq entry
        assert!(!mon.exec());
        assert!(matches!(mon.violation(), Some(Violation::IrqDuringExec { vector: 9 })));
    }

    #[test]
    fn dma_during_exec_clears_exec() {
        let src = ".org 0xE000\nop: nop\n nop\nop_end: ret\n";
        let img = assemble(src).unwrap();
        let (_, er_max) = img.extent().unwrap();
        let cfg =
            PoxConfig::new(ER_MIN, er_max, img.symbol("op_end").unwrap(), OR_MIN, OR_MAX).unwrap();
        let mut platform = Platform::new();
        img.load_into_platform(&mut platform);
        let mut cpu = Cpu::new();
        cpu.set_reg(msp430::Reg::SP, 0x09FE);
        cpu.set_pc(0xE000);
        let mut mon = ApexMonitor::new(cfg);
        mon.observe_step(&cpu.step(&mut platform).unwrap());
        // Mid-run DMA anywhere (even to innocuous memory) is a violation.
        let ev = platform.dma_transfer(&msp430::periph::Dma { dst: 0x0300, data: vec![1] });
        mon.observe_dma(&ev);
        assert!(!mon.exec());
        assert!(matches!(mon.violation(), Some(Violation::DmaDuringExec { addr: 0x0300 })));
    }

    #[test]
    fn dma_into_or_when_idle_poisons_exec() {
        let cfg = PoxConfig::new(0xE000, 0xE00F, 0xE00E, OR_MIN, OR_MAX).unwrap();
        let mut platform = Platform::new();
        let mut mon = ApexMonitor::new(cfg);
        let ev = platform.dma_transfer(&msp430::periph::Dma { dst: OR_MIN, data: vec![9] });
        mon.observe_dma(&ev);
        assert!(!mon.exec());
        assert!(matches!(mon.violation(), Some(Violation::OrWriteOutsideExec { pc: None, .. })));
    }

    #[test]
    fn self_modifying_code_clears_exec() {
        let (mon, _, _) = run_op(" mov #0x4303, &0xE000\n", None);
        assert!(!mon.exec());
        assert!(matches!(mon.violation(), Some(Violation::WriteToEr { addr: 0xE000 })));
    }

    #[test]
    fn fault_inside_er_clears_exec() {
        // 0x0000 is an invalid opcode; place it mid-op via .word.
        let (mon, _, _) = run_op(" nop\n .word 0x0000\n", None);
        assert!(!mon.exec());
        assert!(matches!(mon.violation(), Some(Violation::FaultInEr { .. })));
    }

    #[test]
    fn reset_rearms_monitor() {
        let (mut mon, _, _) = run_op(" br #0xF004\n", None);
        assert!(mon.violation().is_some());
        mon.reset();
        assert_eq!(mon.phase(), Phase::Idle);
        assert_eq!(mon.violation(), None);
        assert!(!mon.exec());
    }
}
