//! Property-based tests for the crypto substrate.

use hacl::{HmacSha256, Sha256};
use proptest::prelude::*;

proptest! {
    /// Splitting a message at any point and hashing incrementally must match
    /// the one-shot digest.
    #[test]
    fn sha256_incremental_equals_oneshot(msg in proptest::collection::vec(any::<u8>(), 0..2048),
                                         cut in any::<usize>()) {
        let want = Sha256::digest(&msg);
        let cut = if msg.is_empty() { 0 } else { cut % (msg.len() + 1) };
        let mut h = Sha256::new();
        h.update(&msg[..cut]);
        h.update(&msg[cut..]);
        prop_assert_eq!(h.finalize(), want);
    }

    /// Many tiny updates must match one big update.
    #[test]
    fn sha256_byte_at_a_time(msg in proptest::collection::vec(any::<u8>(), 0..512)) {
        let want = Sha256::digest(&msg);
        let mut h = Sha256::new();
        for b in &msg {
            h.update(&[*b]);
        }
        prop_assert_eq!(h.finalize(), want);
    }

    /// HMAC incremental == one-shot for arbitrary key/message/split.
    #[test]
    fn hmac_incremental_equals_oneshot(key in proptest::collection::vec(any::<u8>(), 0..200),
                                       msg in proptest::collection::vec(any::<u8>(), 0..1024),
                                       cut in any::<usize>()) {
        let want = HmacSha256::mac(&key, &msg);
        let cut = if msg.is_empty() { 0 } else { cut % (msg.len() + 1) };
        let mut h = HmacSha256::new(&key);
        h.update(&msg[..cut]);
        h.update(&msg[cut..]);
        prop_assert_eq!(h.finalize(), want);
    }

    /// Distinct messages virtually never collide; more importantly, a MAC
    /// must change when the message changes (weak collision sanity).
    #[test]
    fn hmac_message_sensitivity(key in proptest::collection::vec(any::<u8>(), 1..64),
                                msg in proptest::collection::vec(any::<u8>(), 1..256),
                                idx in any::<usize>(), bit in 0u8..8) {
        let idx = idx % msg.len();
        let mut msg2 = msg.clone();
        msg2[idx] ^= 1 << bit;
        prop_assert_ne!(HmacSha256::mac(&key, &msg), HmacSha256::mac(&key, &msg2));
    }

    /// A MAC must change when the key changes.
    #[test]
    fn hmac_key_sensitivity(key in proptest::collection::vec(any::<u8>(), 1..64),
                            msg in proptest::collection::vec(any::<u8>(), 0..128),
                            idx in any::<usize>(), bit in 0u8..8) {
        let idx = idx % key.len();
        let mut key2 = key.clone();
        key2[idx] ^= 1 << bit;
        prop_assert_ne!(HmacSha256::mac(&key, &msg), HmacSha256::mac(&key2, &msg));
    }

    /// Constant-time eq agrees with ==.
    #[test]
    fn ct_eq_agrees_with_slice_eq(a in proptest::collection::vec(any::<u8>(), 0..64),
                                  b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(hacl::constant_time::eq(&a, &b), a == b);
    }
}
