//! Published test vectors pinning the crypto base of the attestation chain:
//!
//! * SHA-256 against the NIST FIPS 180-4 examples and CAVP byte-oriented
//!   short/long-message selections (including the million-`a` vector);
//! * HMAC-SHA-256 against the complete RFC 4231 test-case set (1–7),
//!   including the truncated-output case and the oversized-key cases.

use hacl::{HmacSha256, Sha256};

fn unhex(s: &str) -> Vec<u8> {
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    assert!(s.len() % 2 == 0, "odd hex length");
    (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex")).collect()
}

fn sha256_hex(msg: &[u8]) -> String {
    Sha256::digest(msg).iter().map(|b| format!("{b:02x}")).collect()
}

// ---------------------------------------------------------------- SHA-256

/// NIST FIPS 180-4 appendix examples plus CAVP SHA256ShortMsg selections.
#[test]
fn sha256_nist_vectors() {
    let cases: &[(&[u8], &str)] = &[
        // FIPS 180-4 "abc".
        (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
        // FIPS 180-4 two-block message.
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        // CAVP byte-oriented short messages.
        (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
        (&[0xbd], "68325720aabd7c82f30f554b313d0570c95accbb7dc4b5aae11204c08ffe732b"),
        (
            &[0xc9, 0x8c, 0x8e, 0x55],
            "7abc22c0ae5af26ce93dbb94433a0e0b2e119d014f8e7f65bd56c61ccccd9504",
        ),
    ];
    for (msg, want) in cases {
        assert_eq!(sha256_hex(msg), *want);
    }
}

/// CAVP pseudorandomly long messages exercised through the incremental API.
#[test]
fn sha256_long_messages() {
    // FIPS 180-4: one million repetitions of 'a'.
    let mut h = Sha256::new();
    let chunk = [b'a'; 997]; // deliberately not a multiple of the block size
    let mut fed = 0usize;
    while fed < 1_000_000 {
        let n = chunk.len().min(1_000_000 - fed);
        h.update(&chunk[..n]);
        fed += n;
    }
    let hex: String = h.finalize().iter().map(|b| format!("{b:02x}")).collect();
    assert_eq!(hex, "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");

    // 0x55 repeated 1000 times, cross-checked against CPython's hashlib
    // (one-shot vs incremental is covered by the proptests; here the digest
    // itself is pinned).
    assert_eq!(
        sha256_hex(&[0x55u8; 1000]),
        "557b42c0fc5247464478366ecfebfb1a62707942e6fd218371e35794fca23f4e"
    );
}

// ----------------------------------------------------------- RFC 4231 HMAC

struct Rfc4231 {
    key: &'static str,
    data: &'static str,
    tag: &'static str,
    /// RFC 4231 case 5 only compares the first 128 bits.
    truncate_to: usize,
}

const RFC4231_CASES: &[Rfc4231] = &[
    // Test Case 1.
    Rfc4231 {
        key: "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b",
        data: "4869205468657265",
        tag: "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
        truncate_to: 32,
    },
    // Test Case 2: key shorter than the block size ("Jefe").
    Rfc4231 {
        key: "4a656665",
        data: "7768617420646f2079612077616e7420666f72206e6f7468696e673f",
        tag: "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        truncate_to: 32,
    },
    // Test Case 3: 0xaa×20 key, 0xdd×50 data.
    Rfc4231 {
        key: "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
        data: "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd\
               dddddddddddddddddddddddddddddddddddd",
        tag: "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
        truncate_to: 32,
    },
    // Test Case 4: incrementing key, 0xcd×50 data.
    Rfc4231 {
        key: "0102030405060708090a0b0c0d0e0f10111213141516171819",
        data: "cdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcd\
               cdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcd",
        tag: "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
        truncate_to: 32,
    },
    // Test Case 5: truncated to 128 bits.
    Rfc4231 {
        key: "0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c0c",
        data: "546573742057697468205472756e636174696f6e",
        tag: "a3b6167473100ee06e0c796c2955552b",
        truncate_to: 16,
    },
    // Test Case 6: 131-byte key (hashed), one-block data.
    Rfc4231 {
        key: "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
              aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
              aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
              aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
              aaaaaa",
        data: "54657374205573696e67204c6172676572205468616e20426c6f636b2d53697a\
               65204b6579202d2048617368204b6579204669727374",
        tag: "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
        truncate_to: 32,
    },
    // Test Case 7: 131-byte key, multi-block data.
    Rfc4231 {
        key: "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
              aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
              aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
              aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
              aaaaaa",
        data: "5468697320697320612074657374207573696e672061206c6172676572207468\
               616e20626c6f636b2d73697a65206b657920616e642061206c61726765722074\
               68616e20626c6f636b2d73697a6520646174612e20546865206b6579206e6565\
               647320746f20626520686173686564206265666f7265206265696e6720757365\
               642062792074686520484d414320616c676f726974686d2e",
        tag: "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
        truncate_to: 32,
    },
];

#[test]
fn hmac_sha256_rfc4231_vectors() {
    for (i, case) in RFC4231_CASES.iter().enumerate() {
        let key = unhex(case.key);
        let data = unhex(case.data);
        let got = HmacSha256::mac(&key, &data);
        let want = unhex(case.tag);
        assert_eq!(&got[..case.truncate_to], &want[..], "RFC 4231 test case {} failed", i + 1);
    }
}

/// The `verify` path must accept the RFC tags and reject a flipped bit,
/// through the constant-time comparator.
#[test]
fn hmac_verify_accepts_and_rejects() {
    let key = unhex(RFC4231_CASES[0].key);
    let data = unhex(RFC4231_CASES[0].data);
    let tag = HmacSha256::mac(&key, &data);

    let mut h = HmacSha256::new(&key);
    h.update(&data);
    assert!(h.verify(&tag));

    let mut bad = tag;
    bad[31] ^= 1;
    let mut h = HmacSha256::new(&key);
    h.update(&data);
    assert!(!h.verify(&bad));
}

/// Incremental HMAC over RFC data split at block-unaligned boundaries.
#[test]
fn hmac_incremental_matches_vectors() {
    for case in RFC4231_CASES {
        let key = unhex(case.key);
        let data = unhex(case.data);
        let mut h = HmacSha256::new(&key);
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(&h.finalize()[..case.truncate_to], &unhex(case.tag)[..]);
    }
}
