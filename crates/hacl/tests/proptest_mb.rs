//! Differential tests for the multi-buffer engine: `sha256_mb` must agree
//! bit-for-bit with the scalar `Sha256`/`HmacSha256` implementation for
//! every lane count, message length, incremental chunking, and key shape —
//! and the RFC 4231 HMAC vectors must come out of *every* lane slot.
//!
//! Run with `HACL_FORCE_SCALAR=1` these same tests pin the scalar
//! fallback; the CI matrix covers both.

use hacl::sha256_mb::{digest_lanes, hmac_lanes, Sha256Lanes, MAX_LANES};
use hacl::{Digest, HmacKey, Sha256};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// 1..=`max_lanes` lanes sharing one length (lanes must advance in
/// lockstep), each lane's bytes independent. Equal lengths come from
/// truncating every lane to the shortest generated one.
fn equal_len_msgs(max_lanes: usize, max_len: usize) -> BoxedStrategy<Vec<Vec<u8>>> {
    pvec(pvec(any::<u8>(), 0..max_len), 1..=max_lanes)
        .prop_map(|mut msgs| {
            let len = msgs.iter().map(Vec::len).min().unwrap_or(0);
            for m in &mut msgs {
                m.truncate(len);
            }
            msgs
        })
        .boxed()
}

/// Equal-length lane messages plus two arbitrary in-range split points.
fn msgs_with_splits() -> BoxedStrategy<(Vec<Vec<u8>>, usize, usize)> {
    (equal_len_msgs(MAX_LANES, 600), any::<u64>(), any::<u64>())
        .prop_map(|(msgs, raw_a, raw_b)| {
            let bound = msgs[0].len() + 1;
            let (a, b) = ((raw_a as usize) % bound, (raw_b as usize) % bound);
            (msgs, a, b)
        })
        .boxed()
}

/// Per-lane keys of every shape (empty through past-block-size) paired
/// with equal-length messages.
#[allow(clippy::type_complexity)]
fn keys_and_msgs() -> BoxedStrategy<(Vec<Vec<u8>>, Vec<Vec<u8>>)> {
    pvec((pvec(any::<u8>(), 0..200), pvec(any::<u8>(), 0..300)), 1..=MAX_LANES + 1)
        .prop_map(|pairs| {
            let len = pairs.iter().map(|(_, m)| m.len()).min().unwrap_or(0);
            pairs
                .into_iter()
                .map(|(k, mut m)| {
                    m.truncate(len);
                    (k, m)
                })
                .unzip()
        })
        .boxed()
}

proptest! {
    /// One-shot lane digests equal the scalar digest, for every lane count
    /// and length (covering empty, sub-block, block-straddling messages).
    #[test]
    fn digest_lanes_match_scalar(msgs in equal_len_msgs(MAX_LANES + 1, 600)) {
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let mut out = vec![[0u8; 32]; refs.len()];
        digest_lanes(&refs, &mut out);
        for (msg, got) in msgs.iter().zip(&out) {
            prop_assert_eq!(*got, Sha256::digest(msg));
        }
    }
}

proptest! {
    /// Incremental lockstep updates at arbitrary split points produce the
    /// same digests as the one-shot scalar hash: absorbing `[..a]`,
    /// `[a..b]`, `[b..]` per lane never changes the result.
    #[test]
    fn incremental_splits_match_scalar(input in msgs_with_splits()) {
        let (msgs, cut_a, cut_b) = input;
        let (a, b) = (cut_a.min(cut_b), cut_a.max(cut_b));
        let mut lanes = Sha256Lanes::new(msgs.len());
        for chunk in [(0, a), (a, b), (b, msgs[0].len())] {
            let parts: Vec<&[u8]> = msgs.iter().map(|m| &m[chunk.0..chunk.1]).collect();
            lanes.update(&parts);
        }
        let mut out = vec![[0u8; 32]; msgs.len()];
        lanes.finalize_into(&mut out);
        for (msg, got) in msgs.iter().zip(&out) {
            prop_assert_eq!(*got, Sha256::digest(msg));
        }
    }
}

proptest! {
    /// Lane HMAC equals scalar HMAC for independent keys of every shape
    /// (shorter than, equal to, and longer than the 64-byte block — the
    /// hashed-key path included) over equal-length messages.
    #[test]
    fn hmac_lanes_match_scalar(input in keys_and_msgs()) {
        let (keys, msgs) = input;
        let keys: Vec<HmacKey> = keys.iter().map(|k| HmacKey::new(k)).collect();
        let key_refs: Vec<&HmacKey> = keys.iter().collect();
        let msg_refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let mut out = vec![[0u8; 32]; msgs.len()];
        hmac_lanes(&key_refs, &msg_refs, &mut out);
        for ((key, msg), got) in keys.iter().zip(&msgs).zip(&out) {
            prop_assert_eq!(*got, key.mac(msg));
        }
    }
}

// ------------------------------------------------ RFC 4231 in every slot

struct Rfc4231 {
    key: &'static str,
    data: &'static str,
    tag: &'static str,
}

/// The full-length RFC 4231 cases (case 5 truncates the tag and is
/// exercised by the scalar vector suite).
const RFC4231_CASES: &[Rfc4231] = &[
    // Test Case 1.
    Rfc4231 {
        key: "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b",
        data: "4869205468657265",
        tag: "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
    },
    // Test Case 2: key shorter than the block size ("Jefe").
    Rfc4231 {
        key: "4a656665",
        data: "7768617420646f2079612077616e7420666f72206e6f7468696e673f",
        tag: "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
    },
    // Test Case 3: 0xaa×20 key, 0xdd×50 data.
    Rfc4231 {
        key: "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
        data: "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd\
               dddddddddddddddddddddddddddddddddddd",
        tag: "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
    },
    // Test Case 4: incrementing key, 0xcd×50 data.
    Rfc4231 {
        key: "0102030405060708090a0b0c0d0e0f10111213141516171819",
        data: "cdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcd\
               cdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcd",
        tag: "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
    },
    // Test Case 6: 131-byte key (hashed), one-block data.
    Rfc4231 {
        key: "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
              aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
              aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
              aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
              aaaaaa",
        data: "54657374205573696e67204c6172676572205468616e20426c6f636b2d53697a\
               65204b6579202d2048617368204b6579204669727374",
        tag: "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
    },
    // Test Case 7: 131-byte key, multi-block data.
    Rfc4231 {
        key: "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
              aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
              aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
              aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\
              aaaaaa",
        data: "5468697320697320612074657374207573696e672061206c6172676572207468\
               616e20626c6f636b2d73697a65206b657920616e642061206c61726765722074\
               68616e20626c6f636b2d73697a6520646174612e20546865206b6579206e6565\
               647320746f20626520686173686564206265666f7265206265696e6720757365\
               642062792074686520484d414320616c676f726974686d2e",
        tag: "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
    },
];

fn unhex(s: &str) -> Vec<u8> {
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    s.as_bytes()
        .chunks(2)
        .map(|pair| u8::from_str_radix(std::str::from_utf8(pair).unwrap(), 16).unwrap())
        .collect()
}

/// Every RFC 4231 case produces its pinned tag out of *every* lane slot,
/// with the other lanes absorbing same-length filler under distinct keys —
/// so no lane position, chunk rotation, or neighbour content can perturb
/// the vector.
#[test]
fn rfc4231_vectors_hold_in_every_lane_slot() {
    for (case_no, case) in RFC4231_CASES.iter().enumerate() {
        let key = HmacKey::new(&unhex(case.key));
        let data = unhex(case.data);
        let want: Digest = unhex(case.tag).try_into().unwrap();

        for slot in 0..MAX_LANES {
            let filler_keys: Vec<HmacKey> =
                (0..MAX_LANES).map(|l| HmacKey::new(&[l as u8 + 1; 16])).collect();
            let filler_msgs: Vec<Vec<u8>> =
                (0..MAX_LANES).map(|l| vec![0xA5 ^ l as u8; data.len()]).collect();

            let keys: Vec<&HmacKey> =
                (0..MAX_LANES).map(|l| if l == slot { &key } else { &filler_keys[l] }).collect();
            let msgs: Vec<&[u8]> = (0..MAX_LANES)
                .map(|l| if l == slot { data.as_slice() } else { filler_msgs[l].as_slice() })
                .collect();

            let mut out = [[0u8; 32]; MAX_LANES];
            hmac_lanes(&keys, &msgs, &mut out);
            assert_eq!(out[slot], want, "RFC 4231 case {} in lane {slot}", case_no + 1);
            for l in (0..MAX_LANES).filter(|&l| l != slot) {
                assert_eq!(out[l], filler_keys[l].mac(&filler_msgs[l]), "filler lane {l}");
            }
        }
    }
}
