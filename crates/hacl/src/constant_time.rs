//! Constant-time comparison helpers.
//!
//! Verifier-side tag checks must not leak how many leading bytes of a
//! candidate tag were correct; [`eq`] compares in time independent of the
//! position of the first mismatch.

/// Compares two equal-length byte slices in constant time.
///
/// Returns `false` immediately (and unavoidably non-constant-time) when the
/// lengths differ, which is public information for fixed-size tags.
///
/// # Examples
///
/// ```
/// assert!(hacl::constant_time::eq(b"abc", b"abc"));
/// assert!(!hacl::constant_time::eq(b"abc", b"abd"));
/// assert!(!hacl::constant_time::eq(b"abc", b"ab"));
/// ```
#[must_use]
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::eq;

    #[test]
    fn equal_slices() {
        assert!(eq(&[], &[]));
        assert!(eq(&[1, 2, 3], &[1, 2, 3]));
    }

    #[test]
    fn unequal_content() {
        assert!(!eq(&[1, 2, 3], &[1, 2, 4]));
        assert!(!eq(&[0], &[1]));
    }

    #[test]
    fn unequal_length() {
        assert!(!eq(&[1, 2], &[1, 2, 3]));
    }

    #[test]
    fn every_single_bit_difference_detected() {
        let a = [0u8; 8];
        for byte in 0..8 {
            for bit in 0..8 {
                let mut b = a;
                b[byte] ^= 1 << bit;
                assert!(!eq(&a, &b));
            }
        }
    }
}
