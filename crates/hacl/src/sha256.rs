//! FIPS 180-4 SHA-256.
//!
//! Supports both the convenient one-shot [`Sha256::digest`] and the
//! incremental [`Sha256::update`] / [`Sha256::finalize`] interface used by
//! [`crate::hmac`] and by the attestation substrate when hashing large
//! memory regions in chunks.

use crate::Digest;

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes (FIPS 180-4 §4.2.2).
pub(crate) const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash value: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes (FIPS 180-4 §5.3.3).
pub(crate) const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use hacl::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), Sha256::digest(b"abc"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes processed so far (including buffered).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher in the FIPS 180-4 initial state.
    #[must_use]
    pub fn new() -> Self {
        Self { state: H0, len: 0, buf: [0u8; 64], buf_len: 0 }
    }

    /// One-shot digest of `data`.
    ///
    /// # Examples
    ///
    /// ```
    /// let d = hacl::Sha256::digest(b"");
    /// assert_eq!(d[..4], [0xe3, 0xb0, 0xc4, 0x42]);
    /// ```
    #[must_use]
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data` into the hash state.
    ///
    /// Whole blocks are compressed directly from `data` in a single
    /// multi-block `compress_blocks` call — no per-block copy
    /// through the internal buffer; only a trailing partial block is
    /// buffered.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress_blocks(&block);
                self.buf_len = 0;
            }
        }
        let whole = rest.len() & !63;
        if whole > 0 {
            let (blocks, tail) = rest.split_at(whole);
            self.compress_blocks(blocks);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Applies FIPS 180-4 padding and returns the final digest, consuming the
    /// hasher.
    #[must_use]
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, then zeros to 56 mod 64, then the 64-bit length.
        self.update(&[0x80]);
        if self.buf_len > 56 {
            // No room for the length field: pad out this block first.
            self.buf[self.buf_len..].fill(0);
            let block = self.buf;
            self.compress_blocks(&block);
            self.buf_len = 0;
        }
        self.buf[self.buf_len..56].fill(0);
        // Do not route the length through update(): it would perturb self.len.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress_blocks(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Compresses a whole span of 64-byte blocks in one call.
    fn compress_blocks(&mut self, data: &[u8]) {
        compress_blocks(&mut self.state, data);
    }

    /// Midstate snapshot `(state words, bytes absorbed)` for seeding a
    /// multi-buffer lane from a block-aligned scalar state (the HMAC pads
    /// absorbed by [`crate::HmacKey`] are exactly one block).
    pub(crate) fn block_state(&self) -> ([u32; 8], u64) {
        debug_assert_eq!(self.buf_len, 0, "midstate is only valid at a block boundary");
        (self.state, self.len)
    }
}

/// Compresses a whole span of 64-byte blocks into `state`.
///
/// The working variables live in registers across the entire span and
/// the message schedule array is filled straight from the input, so
/// hashing large regions (SW-Att attests multi-kilobyte ER images per
/// proof) pays the state load/store once per span instead of once per
/// block. Free function so [`crate::sha256_mb`] can drive the same scalar
/// kernel on detached per-lane states.
pub(crate) fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
    debug_assert_eq!(data.len() % 64, 0);
    let mut st = *state;
    for block in data.chunks_exact(64) {
        // Rolling 16-word message schedule: w[t mod 16] is expanded in
        // place as the rounds consume it, so the schedule lives in
        // registers/L1 instead of a 64-word array, and the `& 15`
        // indexing needs no bounds checks.
        let mut w = [0u32; 16];
        for (wi, chunk) in w.iter_mut().zip(block.chunks_exact(4)) {
            *wi = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = st;
        // Eight rounds per iteration with rotated variable roles: the
        // compiler keeps the working variables in registers instead of
        // shuffling h←g←f←… every round.
        macro_rules! round {
            ($a:ident, $b:ident, $c:ident, $d:ident,
                 $e:ident, $f:ident, $g:ident, $h:ident, $t:expr, $wt:expr) => {
                let big_s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
                let ch = ($e & $f) ^ (!$e & $g);
                let t1 =
                    $h.wrapping_add(big_s1).wrapping_add(ch).wrapping_add(K[$t]).wrapping_add($wt);
                let big_s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
                let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
                $d = $d.wrapping_add(t1);
                $h = t1.wrapping_add(big_s0.wrapping_add(maj));
            };
        }
        /// Expands the schedule word for round `t` (t ≥ 16) in place.
        macro_rules! expand {
            ($w:ident, $t:expr) => {{
                let w15 = $w[($t + 1) & 15];
                let w2 = $w[($t + 14) & 15];
                let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
                let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
                $w[$t & 15] =
                    $w[$t & 15].wrapping_add(s0).wrapping_add($w[($t + 9) & 15]).wrapping_add(s1);
                $w[$t & 15]
            }};
        }
        for t0 in (0..16).step_by(8) {
            round!(a, b, c, d, e, f, g, h, t0, w[t0 & 15]);
            round!(h, a, b, c, d, e, f, g, t0 + 1, w[(t0 + 1) & 15]);
            round!(g, h, a, b, c, d, e, f, t0 + 2, w[(t0 + 2) & 15]);
            round!(f, g, h, a, b, c, d, e, t0 + 3, w[(t0 + 3) & 15]);
            round!(e, f, g, h, a, b, c, d, t0 + 4, w[(t0 + 4) & 15]);
            round!(d, e, f, g, h, a, b, c, t0 + 5, w[(t0 + 5) & 15]);
            round!(c, d, e, f, g, h, a, b, t0 + 6, w[(t0 + 6) & 15]);
            round!(b, c, d, e, f, g, h, a, t0 + 7, w[(t0 + 7) & 15]);
        }
        for t0 in (16..64).step_by(8) {
            round!(a, b, c, d, e, f, g, h, t0, expand!(w, t0));
            round!(h, a, b, c, d, e, f, g, t0 + 1, expand!(w, t0 + 1));
            round!(g, h, a, b, c, d, e, f, t0 + 2, expand!(w, t0 + 2));
            round!(f, g, h, a, b, c, d, e, t0 + 3, expand!(w, t0 + 3));
            round!(e, f, g, h, a, b, c, d, t0 + 4, expand!(w, t0 + 4));
            round!(d, e, f, g, h, a, b, c, t0 + 5, expand!(w, t0 + 5));
            round!(c, d, e, f, g, h, a, b, t0 + 6, expand!(w, t0 + 6));
            round!(b, c, d, e, f, g, h, a, t0 + 7, expand!(w, t0 + 7));
        }

        st[0] = st[0].wrapping_add(a);
        st[1] = st[1].wrapping_add(b);
        st[2] = st[2].wrapping_add(c);
        st[3] = st[3].wrapping_add(d);
        st[4] = st[4].wrapping_add(e);
        st[5] = st[5].wrapping_add(f);
        st[6] = st[6].wrapping_add(g);
        st[7] = st[7].wrapping_add(h);
    }
    *state = st;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // NIST FIPS 180-4 / CAVP short-message vectors.
    #[test]
    fn empty_message() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&Sha256::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn four_block_message() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
                    ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex(&Sha256::digest(msg)),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha256::digest(&msg)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn single_byte_cavp() {
        // CAVP SHA256ShortMsg.rsp, Len = 8, Msg = d3.
        assert_eq!(
            hex(&Sha256::digest(&[0xd3])),
            "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2ba9802c1"
        );
    }

    #[test]
    fn length_55_56_57_padding_edges() {
        // These lengths straddle the padding boundary (56 bytes leaves no room
        // for the length field in the same block).
        for (len, want) in [
            (55usize, "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318"),
            (56, "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"),
            (57, "f13b2d724659eb3bf47f2dd6af1accc87b81f09f59f2b75e5c0bed6589dfe8c6"),
        ] {
            let msg = vec![b'a'; len];
            assert_eq!(hex(&Sha256::digest(&msg)), want, "len={len}");
        }
    }

    #[test]
    fn incremental_matches_oneshot_for_every_split() {
        let msg: Vec<u8> = (0u16..300).map(|i| (i % 251) as u8).collect();
        let want = Sha256::digest(&msg);
        for split in 0..msg.len() {
            let mut h = Sha256::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finalize(), want, "split={split}");
        }
    }

    #[test]
    fn clone_forks_the_state() {
        let mut h = Sha256::new();
        h.update(b"shared prefix|");
        let mut h2 = h.clone();
        h.update(b"left");
        h2.update(b"right");
        assert_eq!(h.finalize(), Sha256::digest(b"shared prefix|left"));
        assert_eq!(h2.finalize(), Sha256::digest(b"shared prefix|right"));
    }
}
