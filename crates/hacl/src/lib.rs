//! Clean-room cryptographic primitives for the DIALED reproduction.
//!
//! The DIALED stack (VRASED → APEX → Tiny-CFA → DIALED) roots all of its
//! guarantees in an HMAC-SHA-256 computed by VRASED's `SW-Att` routine over
//! attested memory. The offline dependency set for this reproduction contains
//! no cryptography crate, so this crate provides:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (one-shot and incremental),
//! * [`sha256_mb`] — multi-buffer SHA-256/HMAC: up to
//!   [`sha256_mb::MAX_LANES`] independent equal-length messages compressed
//!   in lockstep (the batch verifier's MAC fast path),
//! * [`hmac`] — RFC 2104 HMAC-SHA-256,
//! * [`constant_time`] — constant-time comparison used by verifiers.
//!
//! # Scope
//!
//! This is a faithful, well-tested implementation (NIST CAVP and RFC 4231
//! vectors are in the test suite), but it has not been audited or hardened
//! against side channels beyond constant-time tag comparison. It exists to
//! make the reproduction self-contained, not to be production crypto.
//!
//! # Examples
//!
//! ```
//! use hacl::{sha256::Sha256, hmac::HmacSha256};
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(digest[0], 0xba);
//!
//! let tag = HmacSha256::mac(b"key", b"message");
//! assert_eq!(tag.len(), 32);
//! ```

// `deny` (not `forbid`) so the AVX2 dispatch in `sha256_mb` can scope a
// single `allow` around its runtime-feature-guarded `target_feature` call.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod constant_time;
pub mod hmac;
pub mod sha256;
pub mod sha256_mb;

pub use hmac::{HmacKey, HmacSha256};
pub use sha256::Sha256;

/// Length in bytes of a SHA-256 digest (and therefore of an HMAC-SHA-256 tag).
pub const DIGEST_LEN: usize = 32;

/// A 256-bit digest or MAC tag.
pub type Digest = [u8; DIGEST_LEN];
