//! Multi-buffer (message-parallel) SHA-256 and HMAC-SHA-256.
//!
//! A batch verifier checks many *independent* MACs per drain. Instead of
//! hashing them one at a time, this module compresses up to [`MAX_LANES`]
//! equal-length messages in lockstep. On x86-64 with AVX2 (detected at
//! runtime) an explicit-intrinsics kernel keeps each of the eight SHA-256
//! working variables in one `__m256i` holding all 8 lanes' words, so every
//! `u32` operation of the scalar round function is one 8-wide vector
//! instruction. Elsewhere a portable elementwise kernel over
//! `Wide<W>` (`[u32; W]`) serves as the correctness fallback — LLVM does
//! *not* reliably auto-vectorize it (the cross-round dependency chains
//! defeat SLP), so its value is portability, not speed.
//!
//! Lockstep requires equal message lengths — exactly what the digest-bound
//! attestation MAC provides: every PoX MAC message is
//! `challenge ‖ (bounds ‖ SHA-256(region))* ‖ extra`, a fixed size per op.
//!
//! # Backend selection
//!
//! [`backend`] picks the widest kernel the CPU supports, once per process.
//! Setting the `HACL_FORCE_SCALAR` environment variable (to anything but
//! `0` or the empty string) forces the scalar fallback — the CI matrix uses
//! this to pin scalar/lane equivalence on the same machine.
//!
//! # Examples
//!
//! ```
//! use hacl::sha256_mb::digest_lanes;
//! use hacl::Sha256;
//!
//! let msgs: [&[u8]; 3] = [b"abc", b"abd", b"abe"];
//! let mut out = [[0u8; 32]; 3];
//! digest_lanes(&msgs, &mut out);
//! assert_eq!(out[0], Sha256::digest(b"abc"));
//! ```

// Lane transposes and schedule gathers read clearer as index loops over the
// lockstep dimension; iterator chains here would obscure the data layout.
#![allow(clippy::needless_range_loop)]

use crate::hmac::HmacKey;
use crate::sha256::{self, H0, K};
use crate::Digest;
use std::sync::OnceLock;

/// Maximum number of messages one [`Sha256Lanes`] instance advances in
/// lockstep (the AVX2 kernel width). [`digest_lanes`] and [`hmac_lanes`]
/// accept any count and chunk internally.
pub const MAX_LANES: usize = 8;

/// Which compression kernel [`backend`] selected for this process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Per-lane scalar compression (fallback, and `HACL_FORCE_SCALAR`).
    Scalar,
    /// Portable 4-wide elementwise kernel — the non-x86 / non-AVX2
    /// correctness fallback (batches four message streams per pass; the
    /// compiler is free to vectorize it but is not relied on to).
    Wide4,
    /// Explicit AVX2 intrinsics kernel (`__m256i`, 8 lanes per register);
    /// selected only when AVX2 is detected at runtime.
    Wide8,
}

impl Backend {
    /// Kernel width in simultaneous messages.
    #[must_use]
    pub fn lanes(self) -> usize {
        match self {
            Backend::Scalar => 1,
            Backend::Wide4 => 4,
            Backend::Wide8 => 8,
        }
    }

    /// Short human-readable label (for bench output).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Wide4 => "wide4",
            Backend::Wide8 => "wide8-avx2",
        }
    }
}

/// The kernel used for all multi-buffer hashing in this process, detected
/// once: honors `HACL_FORCE_SCALAR`, then picks the widest kernel the CPU
/// runs (AVX2 → [`Backend::Wide8`], otherwise [`Backend::Wide4`]).
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| detect(force_scalar_env()))
}

fn force_scalar_env() -> bool {
    std::env::var_os("HACL_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Backend selection policy, split from the environment/`OnceLock` plumbing
/// so tests can drive both branches in one process.
fn detect(force_scalar: bool) -> Backend {
    if force_scalar {
        return Backend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return Backend::Wide8;
    }
    Backend::Wide4
}

/// A `u32` per lane; every scalar op of the SHA-256 round function maps to
/// one elementwise op here. This is the portable fallback kernel's word —
/// the compiler may vectorize the loops but the fast path does not depend
/// on it (the AVX2 module carries the explicit-intrinsics kernel).
#[derive(Clone, Copy)]
struct Wide<const W: usize>([u32; W]);

impl<const W: usize> Wide<W> {
    const ZERO: Self = Self([0; W]);

    #[inline(always)]
    fn splat(x: u32) -> Self {
        Self([x; W])
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        let mut r = self.0;
        for l in 0..W {
            r[l] = r[l].wrapping_add(o.0[l]);
        }
        Self(r)
    }

    #[inline(always)]
    fn xor(self, o: Self) -> Self {
        let mut r = self.0;
        for l in 0..W {
            r[l] ^= o.0[l];
        }
        Self(r)
    }

    #[inline(always)]
    fn and(self, o: Self) -> Self {
        let mut r = self.0;
        for l in 0..W {
            r[l] &= o.0[l];
        }
        Self(r)
    }

    #[inline(always)]
    fn not(self) -> Self {
        let mut r = self.0;
        for l in 0..W {
            r[l] = !r[l];
        }
        Self(r)
    }

    #[inline(always)]
    fn rotr(self, n: u32) -> Self {
        let mut r = self.0;
        for l in 0..W {
            r[l] = r[l].rotate_right(n);
        }
        Self(r)
    }

    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        let mut r = self.0;
        for l in 0..W {
            r[l] >>= n;
        }
        Self(r)
    }
}

/// Compresses `nblocks` 64-byte blocks of `W` messages in lockstep.
///
/// Mirrors the scalar kernel in [`crate::sha256`] — same rolling 16-word
/// schedule, same eight-rounds-per-iteration variable rotation — with every
/// `u32` replaced by a [`Wide<W>`]. `states[l]` is message `l`'s chaining
/// state; `blocks[l]` must hold at least `nblocks * 64` bytes.
#[inline(always)]
fn compress_blocks_wide<const W: usize>(
    states: &mut [[u32; 8]],
    blocks: [&[u8]; W],
    nblocks: usize,
) {
    debug_assert_eq!(states.len(), W);
    // Transpose the lane states once; they stay in vector registers across
    // the whole span.
    let mut hs = [Wide::<W>::ZERO; 8];
    for r in 0..8 {
        for l in 0..W {
            hs[r].0[l] = states[l][r];
        }
    }
    for blk in 0..nblocks {
        let base = blk * 64;
        // Gather the big-endian schedule words across lanes.
        let mut w = [Wide::<W>::ZERO; 16];
        for t in 0..16 {
            let o = base + 4 * t;
            for l in 0..W {
                let b = &blocks[l][o..o + 4];
                w[t].0[l] = u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
            }
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = hs;
        macro_rules! round {
            ($a:ident, $b:ident, $c:ident, $d:ident,
             $e:ident, $f:ident, $g:ident, $h:ident, $t:expr, $wt:expr) => {
                let big_s1 = $e.rotr(6).xor($e.rotr(11)).xor($e.rotr(25));
                let ch = $e.and($f).xor($e.not().and($g));
                let t1 = $h.add(big_s1).add(ch).add(Wide::splat(K[$t])).add($wt);
                let big_s0 = $a.rotr(2).xor($a.rotr(13)).xor($a.rotr(22));
                let maj = $a.and($b).xor($a.and($c)).xor($b.and($c));
                $d = $d.add(t1);
                $h = t1.add(big_s0.add(maj));
            };
        }
        macro_rules! expand {
            ($w:ident, $t:expr) => {{
                let w15 = $w[($t + 1) & 15];
                let w2 = $w[($t + 14) & 15];
                let s0 = w15.rotr(7).xor(w15.rotr(18)).xor(w15.shr(3));
                let s1 = w2.rotr(17).xor(w2.rotr(19)).xor(w2.shr(10));
                $w[$t & 15] = $w[$t & 15].add(s0).add($w[($t + 9) & 15]).add(s1);
                $w[$t & 15]
            }};
        }
        for t0 in (0..16).step_by(8) {
            round!(a, b, c, d, e, f, g, h, t0, w[t0 & 15]);
            round!(h, a, b, c, d, e, f, g, t0 + 1, w[(t0 + 1) & 15]);
            round!(g, h, a, b, c, d, e, f, t0 + 2, w[(t0 + 2) & 15]);
            round!(f, g, h, a, b, c, d, e, t0 + 3, w[(t0 + 3) & 15]);
            round!(e, f, g, h, a, b, c, d, t0 + 4, w[(t0 + 4) & 15]);
            round!(d, e, f, g, h, a, b, c, t0 + 5, w[(t0 + 5) & 15]);
            round!(c, d, e, f, g, h, a, b, t0 + 6, w[(t0 + 6) & 15]);
            round!(b, c, d, e, f, g, h, a, t0 + 7, w[(t0 + 7) & 15]);
        }
        for t0 in (16..64).step_by(8) {
            round!(a, b, c, d, e, f, g, h, t0, expand!(w, t0));
            round!(h, a, b, c, d, e, f, g, t0 + 1, expand!(w, t0 + 1));
            round!(g, h, a, b, c, d, e, f, t0 + 2, expand!(w, t0 + 2));
            round!(f, g, h, a, b, c, d, e, t0 + 3, expand!(w, t0 + 3));
            round!(e, f, g, h, a, b, c, d, t0 + 4, expand!(w, t0 + 4));
            round!(d, e, f, g, h, a, b, c, t0 + 5, expand!(w, t0 + 5));
            round!(c, d, e, f, g, h, a, b, t0 + 6, expand!(w, t0 + 6));
            round!(b, c, d, e, f, g, h, a, t0 + 7, expand!(w, t0 + 7));
        }

        hs[0] = hs[0].add(a);
        hs[1] = hs[1].add(b);
        hs[2] = hs[2].add(c);
        hs[3] = hs[3].add(d);
        hs[4] = hs[4].add(e);
        hs[5] = hs[5].add(f);
        hs[6] = hs[6].add(g);
        hs[7] = hs[7].add(h);
    }
    for r in 0..8 {
        for l in 0..W {
            states[l][r] = hs[r].0[l];
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! Explicit-intrinsics 8-wide kernel.
    //!
    //! The portable [`super::compress_blocks_wide`] kernel is *not*
    //! reliably auto-vectorized at `W = 8`: LLVM's SLP pass gives up on
    //! the long cross-round dependency chains and emits per-lane scalar
    //! code (measured: ~1.1x over scalar). Writing the round function
    //! directly over `__m256i` keeps each of the eight working variables
    //! in one `ymm` register holding all eight lanes' words.
    #![allow(unsafe_code)]
    // The transposed state loads/stores index the lockstep dimension;
    // plain loops keep the lane layout visible.
    #![allow(clippy::needless_range_loop)]

    use super::K;
    #[allow(clippy::wildcard_imports)]
    use core::arch::x86_64::*;

    /// Lane-wise `rotate_right` (AVX2 has no 32-bit rotate: shift pair + or).
    macro_rules! rotr {
        ($x:expr, $n:literal) => {
            _mm256_or_si256(_mm256_srli_epi32::<$n>($x), _mm256_slli_epi32::<{ 32 - $n }>($x))
        };
    }

    /// # Panics (debug)
    /// Callers must only reach this through [`super::Backend::Wide8`],
    /// which is selected after `is_x86_feature_detected!("avx2")`.
    pub(super) fn compress_blocks_x8(states: &mut [[u32; 8]], blocks: [&[u8]; 8], nblocks: usize) {
        debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
        // SAFETY: the Wide8 backend is only selected when AVX2 was detected
        // at runtime, so the target-feature precondition holds.
        unsafe { compress_x8(states, blocks, nblocks) }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::cast_possible_wrap, clippy::cast_sign_loss, clippy::too_many_lines)]
    unsafe fn compress_x8(states: &mut [[u32; 8]], blocks: [&[u8]; 8], nblocks: usize) {
        debug_assert_eq!(states.len(), 8);
        // Transposed chaining state: hs[r] holds word r of all 8 lanes.
        let mut hs: [__m256i; 8] = std::array::from_fn(|r| {
            _mm256_setr_epi32(
                states[0][r] as i32,
                states[1][r] as i32,
                states[2][r] as i32,
                states[3][r] as i32,
                states[4][r] as i32,
                states[5][r] as i32,
                states[6][r] as i32,
                states[7][r] as i32,
            )
        });

        for blk in 0..nblocks {
            let base = blk * 64;
            let word = |l: usize, t: usize| -> i32 {
                let o = base + 4 * t;
                let b = &blocks[l][o..o + 4];
                i32::from_be_bytes([b[0], b[1], b[2], b[3]])
            };
            // Gather the big-endian schedule words across lanes.
            let mut w: [__m256i; 16] = std::array::from_fn(|t| {
                _mm256_setr_epi32(
                    word(0, t),
                    word(1, t),
                    word(2, t),
                    word(3, t),
                    word(4, t),
                    word(5, t),
                    word(6, t),
                    word(7, t),
                )
            });

            let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = hs;
            macro_rules! round {
                ($a:ident, $b:ident, $c:ident, $d:ident,
                 $e:ident, $f:ident, $g:ident, $h:ident, $t:expr, $wt:expr) => {
                    let big_s1 = _mm256_xor_si256(
                        _mm256_xor_si256(rotr!($e, 6), rotr!($e, 11)),
                        rotr!($e, 25),
                    );
                    // ch = (e & f) ^ (!e & g); andnot(a, b) computes !a & b.
                    let ch =
                        _mm256_xor_si256(_mm256_and_si256($e, $f), _mm256_andnot_si256($e, $g));
                    let t1 = _mm256_add_epi32(
                        _mm256_add_epi32(_mm256_add_epi32($h, big_s1), ch),
                        _mm256_add_epi32(_mm256_set1_epi32(K[$t] as i32), $wt),
                    );
                    let big_s0 = _mm256_xor_si256(
                        _mm256_xor_si256(rotr!($a, 2), rotr!($a, 13)),
                        rotr!($a, 22),
                    );
                    // maj = (a & b) ^ (a & c) ^ (b & c) = (a & (b ^ c)) ^ (b & c).
                    let maj = _mm256_xor_si256(
                        _mm256_and_si256($a, _mm256_xor_si256($b, $c)),
                        _mm256_and_si256($b, $c),
                    );
                    $d = _mm256_add_epi32($d, t1);
                    $h = _mm256_add_epi32(t1, _mm256_add_epi32(big_s0, maj));
                };
            }
            macro_rules! expand {
                ($w:ident, $t:expr) => {{
                    let w15 = $w[($t + 1) & 15];
                    let w2 = $w[($t + 14) & 15];
                    let s0 = _mm256_xor_si256(
                        _mm256_xor_si256(rotr!(w15, 7), rotr!(w15, 18)),
                        _mm256_srli_epi32::<3>(w15),
                    );
                    let s1 = _mm256_xor_si256(
                        _mm256_xor_si256(rotr!(w2, 17), rotr!(w2, 19)),
                        _mm256_srli_epi32::<10>(w2),
                    );
                    $w[$t & 15] = _mm256_add_epi32(
                        _mm256_add_epi32($w[$t & 15], s0),
                        _mm256_add_epi32($w[($t + 9) & 15], s1),
                    );
                    $w[$t & 15]
                }};
            }
            for t0 in (0..16).step_by(8) {
                round!(a, b, c, d, e, f, g, h, t0, w[t0 & 15]);
                round!(h, a, b, c, d, e, f, g, t0 + 1, w[(t0 + 1) & 15]);
                round!(g, h, a, b, c, d, e, f, t0 + 2, w[(t0 + 2) & 15]);
                round!(f, g, h, a, b, c, d, e, t0 + 3, w[(t0 + 3) & 15]);
                round!(e, f, g, h, a, b, c, d, t0 + 4, w[(t0 + 4) & 15]);
                round!(d, e, f, g, h, a, b, c, t0 + 5, w[(t0 + 5) & 15]);
                round!(c, d, e, f, g, h, a, b, t0 + 6, w[(t0 + 6) & 15]);
                round!(b, c, d, e, f, g, h, a, t0 + 7, w[(t0 + 7) & 15]);
            }
            for t0 in (16..64).step_by(8) {
                round!(a, b, c, d, e, f, g, h, t0, expand!(w, t0));
                round!(h, a, b, c, d, e, f, g, t0 + 1, expand!(w, t0 + 1));
                round!(g, h, a, b, c, d, e, f, t0 + 2, expand!(w, t0 + 2));
                round!(f, g, h, a, b, c, d, e, t0 + 3, expand!(w, t0 + 3));
                round!(e, f, g, h, a, b, c, d, t0 + 4, expand!(w, t0 + 4));
                round!(d, e, f, g, h, a, b, c, t0 + 5, expand!(w, t0 + 5));
                round!(c, d, e, f, g, h, a, b, t0 + 6, expand!(w, t0 + 6));
                round!(b, c, d, e, f, g, h, a, t0 + 7, expand!(w, t0 + 7));
            }

            hs[0] = _mm256_add_epi32(hs[0], a);
            hs[1] = _mm256_add_epi32(hs[1], b);
            hs[2] = _mm256_add_epi32(hs[2], c);
            hs[3] = _mm256_add_epi32(hs[3], d);
            hs[4] = _mm256_add_epi32(hs[4], e);
            hs[5] = _mm256_add_epi32(hs[5], f);
            hs[6] = _mm256_add_epi32(hs[6], g);
            hs[7] = _mm256_add_epi32(hs[7], h);
        }

        // Transpose the state back out through a stack array.
        for r in 0..8 {
            let mut lanes = [0u32; 8];
            // SAFETY: `lanes` is 32 bytes and `storeu` has no alignment
            // requirement.
            unsafe {
                _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), hs[r]);
            }
            for l in 0..8 {
                states[l][r] = lanes[l];
            }
        }
    }
}

/// Advances every lane state by `nblocks` blocks using the widest kernel
/// the backend offers, peeling remainders down through narrower kernels to
/// scalar. `states` and `blocks` are parallel; each `blocks[l]` must hold
/// at least `nblocks * 64` bytes.
fn compress_each(states: &mut [[u32; 8]], blocks: &[&[u8]], nblocks: usize) {
    debug_assert_eq!(states.len(), blocks.len());
    let n = states.len();
    let be = backend();
    let mut done = 0;
    #[cfg(target_arch = "x86_64")]
    if be == Backend::Wide8 {
        while n - done >= 8 {
            let group: [&[u8]; 8] = std::array::from_fn(|i| blocks[done + i]);
            avx2::compress_blocks_x8(&mut states[done..done + 8], group, nblocks);
            done += 8;
        }
    }
    if be != Backend::Scalar {
        while n - done >= 4 {
            let group: [&[u8]; 4] = std::array::from_fn(|i| blocks[done + i]);
            compress_blocks_wide::<4>(&mut states[done..done + 4], group, nblocks);
            done += 4;
        }
    }
    for l in done..n {
        sha256::compress_blocks(&mut states[l], &blocks[l][..nblocks * 64]);
    }
}

/// Up to [`MAX_LANES`] SHA-256 computations advanced in lockstep.
///
/// All lanes must receive the *same number of bytes* in every
/// [`update`](Self::update) call (their running lengths stay equal), which
/// lets padding and finalization also run in lockstep. Use
/// [`digest_lanes`]/[`hmac_lanes`] unless you need incremental updates.
///
/// # Examples
///
/// ```
/// use hacl::sha256_mb::Sha256Lanes;
/// use hacl::Sha256;
///
/// let mut lanes = Sha256Lanes::new(2);
/// lanes.update(&[b"ab", b"xy"]);
/// lanes.update(&[b"c", b"z"]);
/// let mut out = [[0u8; 32]; 2];
/// lanes.finalize_into(&mut out);
/// assert_eq!(out[0], Sha256::digest(b"abc"));
/// assert_eq!(out[1], Sha256::digest(b"xyz"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256Lanes {
    states: [[u32; 8]; MAX_LANES],
    /// Active lane count (1..=MAX_LANES).
    n: usize,
    /// Bytes absorbed per lane (equal across lanes by construction).
    len: u64,
    /// One partial-block buffer per lane, filled in lockstep.
    buf: [[u8; 64]; MAX_LANES],
    buf_len: usize,
}

impl Sha256Lanes {
    /// Creates `lanes` fresh hashers in the FIPS 180-4 initial state.
    ///
    /// # Panics
    /// If `lanes` is 0 or exceeds [`MAX_LANES`].
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        assert!((1..=MAX_LANES).contains(&lanes), "lane count {lanes} not in 1..={MAX_LANES}");
        Self { states: [H0; MAX_LANES], n: lanes, len: 0, buf: [[0u8; 64]; MAX_LANES], buf_len: 0 }
    }

    /// Seeds lanes from block-aligned scalar midstates (state words + bytes
    /// absorbed), all of which must report the same length. This is how
    /// [`hmac_lanes`] resumes from precomputed `HmacKey` pad states.
    fn from_block_states(seeds: &[([u32; 8], u64)]) -> Self {
        let mut lanes = Self::new(seeds.len());
        lanes.len = seeds[0].1;
        for (l, (state, len)) in seeds.iter().enumerate() {
            debug_assert_eq!(*len, lanes.len, "lanes must share one running length");
            lanes.states[l] = *state;
        }
        lanes
    }

    /// Active lane count.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.n
    }

    /// Absorbs one equal-length chunk per lane.
    ///
    /// # Panics
    /// If `msgs.len()` differs from the lane count or the chunks differ in
    /// length (lanes advance in lockstep).
    pub fn update(&mut self, msgs: &[&[u8]]) {
        assert_eq!(msgs.len(), self.n, "one message chunk per lane");
        let len = msgs[0].len();
        assert!(
            msgs.iter().all(|m| m.len() == len),
            "lanes advance in lockstep: equal chunk lengths required"
        );
        self.len = self.len.wrapping_add(len as u64);
        let mut off = 0;
        if self.buf_len > 0 {
            let take = len.min(64 - self.buf_len);
            for l in 0..self.n {
                self.buf[l][self.buf_len..self.buf_len + take].copy_from_slice(&msgs[l][..take]);
            }
            self.buf_len += take;
            off = take;
            if self.buf_len == 64 {
                let buf = self.buf;
                let mut blocks: [&[u8]; MAX_LANES] = [&[]; MAX_LANES];
                for l in 0..self.n {
                    blocks[l] = &buf[l];
                }
                compress_each(&mut self.states[..self.n], &blocks[..self.n], 1);
                self.buf_len = 0;
            }
        }
        let whole = (len - off) & !63;
        if whole > 0 {
            let mut blocks: [&[u8]; MAX_LANES] = [&[]; MAX_LANES];
            for l in 0..self.n {
                blocks[l] = &msgs[l][off..off + whole];
            }
            compress_each(&mut self.states[..self.n], &blocks[..self.n], whole / 64);
            off += whole;
        }
        if off < len {
            let tail = len - off;
            for l in 0..self.n {
                self.buf[l][..tail].copy_from_slice(&msgs[l][off..]);
            }
            self.buf_len = tail;
        }
    }

    /// Applies FIPS 180-4 padding (identical bytes for every lane, since
    /// lengths are equal) and writes one digest per lane.
    ///
    /// # Panics
    /// If `out.len()` differs from the lane count.
    pub fn finalize_into(mut self, out: &mut [Digest]) {
        assert_eq!(out.len(), self.n, "one digest slot per lane");
        let bit_len = self.len.wrapping_mul(8);
        // 0x80, zeros to 56 mod 64, then the 64-bit big-endian bit length.
        let k = 55usize.wrapping_sub(self.buf_len) % 64;
        let pad_len = 1 + k + 8;
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        pad[1 + k..pad_len].copy_from_slice(&bit_len.to_be_bytes());
        let mut msgs: [&[u8]; MAX_LANES] = [&[]; MAX_LANES];
        for m in msgs.iter_mut().take(self.n) {
            *m = &pad[..pad_len];
        }
        // `update` bumps self.len past the true message length, but bit_len
        // is already captured, so the padding it observes is final.
        let n = self.n;
        self.update(&msgs[..n]);
        debug_assert_eq!(self.buf_len, 0);
        for (l, d) in out.iter_mut().enumerate() {
            for (i, w) in self.states[l].iter().enumerate() {
                d[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
            }
        }
    }
}

/// Digests any number of equal-length messages, chunking into lockstep
/// groups of [`MAX_LANES`] internally. `out` is parallel to `msgs`.
///
/// # Panics
/// If `msgs` and `out` differ in length, or the messages differ in length.
pub fn digest_lanes(msgs: &[&[u8]], out: &mut [Digest]) {
    assert_eq!(msgs.len(), out.len(), "one digest slot per message");
    let Some(first) = msgs.first() else { return };
    assert!(
        msgs.iter().all(|m| m.len() == first.len()),
        "multi-buffer hashing requires equal message lengths"
    );
    for (msgs, out) in msgs.chunks(MAX_LANES).zip(out.chunks_mut(MAX_LANES)) {
        let mut lanes = Sha256Lanes::new(msgs.len());
        lanes.update(msgs);
        lanes.finalize_into(out);
    }
}

/// MACs any number of equal-length messages, each under its own
/// precomputed [`HmacKey`], chunking into lockstep groups of [`MAX_LANES`].
/// `keys`, `msgs` and `out` are parallel.
///
/// Both HMAC passes run in lanes: the inner lanes resume from each key's
/// `key ⊕ ipad` midstate, and the outer lanes absorb the 32-byte inner
/// digests (equal-length by construction).
///
/// # Panics
/// If the slice lengths differ, or the messages differ in length.
pub fn hmac_lanes(keys: &[&HmacKey], msgs: &[&[u8]], out: &mut [Digest]) {
    assert_eq!(keys.len(), msgs.len(), "one key per message");
    assert_eq!(msgs.len(), out.len(), "one tag slot per message");
    let Some(first) = msgs.first() else { return };
    assert!(
        msgs.iter().all(|m| m.len() == first.len()),
        "multi-buffer MACing requires equal message lengths"
    );
    for ((keys, msgs), out) in
        keys.chunks(MAX_LANES).zip(msgs.chunks(MAX_LANES)).zip(out.chunks_mut(MAX_LANES))
    {
        let n = msgs.len();
        let mut seeds = [([0u32; 8], 0u64); MAX_LANES];
        for l in 0..n {
            seeds[l] = keys[l].inner().block_state();
        }
        let mut lanes = Sha256Lanes::from_block_states(&seeds[..n]);
        lanes.update(msgs);
        let mut inner = [[0u8; 32]; MAX_LANES];
        lanes.finalize_into(&mut inner[..n]);

        for l in 0..n {
            seeds[l] = keys[l].outer().block_state();
        }
        let mut lanes = Sha256Lanes::from_block_states(&seeds[..n]);
        let mut refs: [&[u8]; MAX_LANES] = [&[]; MAX_LANES];
        for l in 0..n {
            refs[l] = &inner[l];
        }
        lanes.update(&refs[..n]);
        lanes.finalize_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sha256;

    #[test]
    fn detect_honors_force_scalar() {
        assert_eq!(detect(true), Backend::Scalar);
        assert_ne!(detect(false), Backend::Scalar, "non-forced detection picks a wide kernel");
    }

    #[test]
    fn backend_reports_consistent_metadata() {
        let be = backend();
        assert_eq!(be, backend(), "selection is cached");
        assert!(be.lanes() >= 1 && be.lanes() <= MAX_LANES);
        assert!(!be.label().is_empty());
    }

    #[test]
    fn wide4_kernel_matches_scalar_single_block() {
        let blocks: [[u8; 64]; 4] =
            [[0x00; 64], [0xff; 64], [0xa5; 64], core::array::from_fn(|i| i as u8)];
        let mut states = [H0; 4];
        let refs: [&[u8]; 4] = core::array::from_fn(|l| &blocks[l][..]);
        compress_blocks_wide::<4>(&mut states, refs, 1);
        for l in 0..4 {
            let mut want = H0;
            sha256::compress_blocks(&mut want, &blocks[l]);
            assert_eq!(states[l], want, "lane {l}");
        }
    }

    #[test]
    fn digest_lanes_matches_scalar_across_counts_and_lengths() {
        // Lengths straddle the padding edges; counts straddle every kernel
        // width and the MAX_LANES chunking boundary.
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 127, 128, 300] {
            for count in 1..=(MAX_LANES + 3) {
                let msgs: Vec<Vec<u8>> = (0..count)
                    .map(|l| (0..len).map(|i| (i * 31 + l * 7 + 1) as u8).collect())
                    .collect();
                let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
                let mut out = vec![[0u8; 32]; count];
                digest_lanes(&refs, &mut out);
                for (l, msg) in msgs.iter().enumerate() {
                    assert_eq!(out[l], Sha256::digest(msg), "len={len} count={count} lane={l}");
                }
            }
        }
    }

    #[test]
    fn incremental_lanes_match_oneshot() {
        let msgs: Vec<Vec<u8>> =
            (0..5).map(|l| (0..200).map(|i| (i * 13 + l) as u8).collect()).collect();
        for cut in [0usize, 1, 63, 64, 65, 100, 200] {
            let mut lanes = Sha256Lanes::new(5);
            let head: Vec<&[u8]> = msgs.iter().map(|m| &m[..cut]).collect();
            let tail: Vec<&[u8]> = msgs.iter().map(|m| &m[cut..]).collect();
            lanes.update(&head);
            lanes.update(&tail);
            let mut out = [[0u8; 32]; 5];
            lanes.finalize_into(&mut out);
            for (l, msg) in msgs.iter().enumerate() {
                assert_eq!(out[l], Sha256::digest(msg), "cut={cut} lane={l}");
            }
        }
    }

    #[test]
    fn hmac_lanes_matches_per_key_scalar_macs() {
        let keys: Vec<HmacKey> =
            (0..MAX_LANES + 2).map(|l| HmacKey::new(&[l as u8 + 1; 20])).collect();
        let msgs: Vec<Vec<u8>> = (0..MAX_LANES + 2).map(|l| vec![l as u8; 77]).collect();
        let key_refs: Vec<&HmacKey> = keys.iter().collect();
        let msg_refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let mut out = vec![[0u8; 32]; keys.len()];
        hmac_lanes(&key_refs, &msg_refs, &mut out);
        for l in 0..keys.len() {
            assert_eq!(out[l], keys[l].mac(&msgs[l]), "lane {l}");
        }
    }

    #[test]
    fn empty_inputs_are_a_no_op() {
        digest_lanes(&[], &mut []);
        hmac_lanes(&[], &[], &mut []);
    }

    #[test]
    #[should_panic(expected = "equal message lengths")]
    fn unequal_lengths_panic() {
        let msgs: [&[u8]; 2] = [b"a", b"ab"];
        digest_lanes(&msgs, &mut [[0u8; 32]; 2]);
    }
}
