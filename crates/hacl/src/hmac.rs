//! RFC 2104 HMAC-SHA-256.
//!
//! This is the MAC computed by VRASED's `SW-Att` over attested memory, and by
//! extension the authenticator underlying APEX proofs of execution and the
//! DIALED attestation reports.

use crate::sha256::Sha256;
use crate::Digest;

const BLOCK_LEN: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// A precomputed HMAC-SHA-256 key context.
///
/// Deriving the RFC 2104 pads costs two SHA-256 compressions (plus a key
/// hash for long keys); a long-lived verifier MACing under one device key
/// pays that once here and then [`HmacKey::begin`]s each message with a
/// flat state copy. This is what keeps batch-verification workers from
/// re-deriving pads on every proof.
///
/// # Examples
///
/// ```
/// use hacl::{HmacKey, HmacSha256};
///
/// let key = HmacKey::new(b"device-key");
/// assert_eq!(key.mac(b"m"), HmacSha256::mac(b"device-key", b"m"));
/// ```
#[derive(Clone, Debug)]
pub struct HmacKey {
    /// Hash state after absorbing `key ⊕ ipad`.
    inner: Sha256,
    /// Hash state after absorbing `key ⊕ opad`.
    outer: Sha256,
}

impl HmacKey {
    /// Precomputes the keyed pads for `key`.
    ///
    /// Keys longer than the 64-byte SHA-256 block are first hashed, per
    /// RFC 2104.
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            k[..32].copy_from_slice(&Sha256::digest(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ IPAD;
            opad[i] = k[i] ^ OPAD;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        Self { inner, outer }
    }

    /// Starts a MAC computation under this key (a flat state copy — no
    /// hashing happens until data arrives).
    #[must_use]
    pub fn begin(&self) -> HmacSha256 {
        HmacSha256 { inner: self.inner.clone(), outer: self.outer.clone() }
    }

    /// One-shot MAC of `msg` under this key.
    #[must_use]
    pub fn mac(&self, msg: &[u8]) -> Digest {
        let mut h = self.begin();
        h.update(msg);
        h.finalize()
    }

    /// Verifies `tag` over `msg` in constant time.
    #[must_use]
    pub fn verify(&self, msg: &[u8], tag: &Digest) -> bool {
        let mut h = self.begin();
        h.update(msg);
        h.verify(tag)
    }

    /// The `key ⊕ ipad` midstate, for seeding a multi-buffer lane.
    pub(crate) fn inner(&self) -> &Sha256 {
        &self.inner
    }

    /// The `key ⊕ opad` midstate, for seeding a multi-buffer lane.
    pub(crate) fn outer(&self) -> &Sha256 {
        &self.outer
    }
}

/// Incremental HMAC-SHA-256.
///
/// # Examples
///
/// ```
/// use hacl::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"mes");
/// mac.update(b"sage");
/// assert_eq!(mac.finalize(), HmacSha256::mac(b"key", b"message"));
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Outer hasher pre-loaded with `key ⊕ opad`, finished at finalize time.
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates a MAC instance keyed with `key`.
    ///
    /// Callers MACing many messages under one key should hold an
    /// [`HmacKey`] and [`HmacKey::begin`] instead, skipping the per-message
    /// pad derivation.
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        HmacKey::new(key).begin()
    }

    /// One-shot MAC of `msg` under `key`.
    ///
    /// # Examples
    ///
    /// ```
    /// let tag = hacl::HmacSha256::mac(b"k", b"m");
    /// assert_ne!(tag, hacl::HmacSha256::mac(b"k", b"m2"));
    /// ```
    #[must_use]
    pub fn mac(key: &[u8], msg: &[u8]) -> Digest {
        let mut h = Self::new(key);
        h.update(msg);
        h.finalize()
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the 32-byte tag, consuming the instance.
    #[must_use]
    pub fn finalize(mut self) -> Digest {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }

    /// Verifies `tag` against the absorbed message in constant time,
    /// consuming the instance.
    #[must_use]
    pub fn verify(self, tag: &Digest) -> bool {
        crate::constant_time::eq(&self.finalize(), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&HmacSha256::mac(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hex(&HmacSha256::mac(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        assert_eq!(
            hex(&HmacSha256::mac(&key, &msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1u8..=25).collect();
        let msg = [0xcd; 50];
        assert_eq!(
            hex(&HmacSha256::mac(&key, &msg)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        assert_eq!(
            hex(&HmacSha256::mac(&key, b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_long_msg() {
        let key = [0xaa; 131];
        let msg = b"This is a test using a larger than block-size key and a larger than \
                    block-size data. The key needs to be hashed before being used by the \
                    HMAC algorithm.";
        assert_eq!(
            hex(&HmacSha256::mac(&key, msg)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn exactly_block_sized_key_is_used_raw() {
        let key = [0x42; 64];
        // A 64-byte key must NOT be hashed; check against a manually padded
        // equivalent (65-byte key WOULD be hashed, so the two must differ).
        let long = [0x42; 65];
        assert_ne!(HmacSha256::mac(&key, b"x"), HmacSha256::mac(&long, b"x"));
    }

    #[test]
    fn verify_accepts_correct_and_rejects_bitflips() {
        let tag = HmacSha256::mac(b"key", b"payload");
        let mut h = HmacSha256::new(b"key");
        h.update(b"payload");
        assert!(h.verify(&tag));
        for bit in 0..8 {
            let mut bad = tag;
            bad[7] ^= 1 << bit;
            let mut h = HmacSha256::new(b"key");
            h.update(b"payload");
            assert!(!h.verify(&bad), "bit {bit} flip accepted");
        }
    }

    #[test]
    fn incremental_matches_oneshot_for_every_split() {
        let msg: Vec<u8> = (0u16..200).map(|i| (i * 7 % 256) as u8).collect();
        let want = HmacSha256::mac(b"split-key", &msg);
        for split in 0..msg.len() {
            let mut h = HmacSha256::new(b"split-key");
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finalize(), want, "split={split}");
        }
    }
}
