//! The Vrf ↔ Prv static-attestation protocol.

use crate::keystore::KeyStore;
use crate::swatt::SwAtt;
use hacl::sha256_mb::{self, MAX_LANES};
use hacl::{constant_time, Digest, HmacKey, Sha256};
use msp430::platform::Platform;

/// A 256-bit attestation challenge (nonce).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Challenge([u8; 32]);

impl Challenge {
    /// Wraps explicit nonce bytes.
    #[must_use]
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Self(bytes)
    }

    /// Derives a fresh challenge from a session label and counter — the
    /// deterministic stand-in for the verifier's RNG, so experiments are
    /// reproducible.
    #[must_use]
    pub fn derive(label: &[u8], counter: u64) -> Self {
        let mut h = Sha256::new();
        h.update(b"dialed-repro challenge");
        h.update(label);
        h.update(&counter.to_le_bytes());
        Self(h.finalize())
    }

    /// Raw bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// The verifier side of static RA: holds the shared key and the expected
/// memory contents.
#[derive(Clone, Debug)]
pub struct RaVerifier {
    swatt: SwAtt,
}

impl RaVerifier {
    /// A verifier sharing `keystore` with the device.
    #[must_use]
    pub fn new(keystore: KeyStore) -> Self {
        Self { swatt: SwAtt::new(keystore) }
    }

    /// Checks a device response against the expected memory image
    /// (constant-time tag comparison).
    #[must_use]
    pub fn check(
        &self,
        expected: &Platform,
        challenge: &Challenge,
        regions: &[(u16, u16)],
        response: &Digest,
    ) -> bool {
        let want = self.swatt.attest(expected, challenge, regions);
        constant_time::eq(&want, response)
    }

    /// Checks a response that bound extra metadata (used by APEX).
    #[must_use]
    pub fn check_with_extra(
        &self,
        expected: &Platform,
        challenge: &Challenge,
        regions: &[(u16, u16)],
        extra: &[u8],
        response: &Digest,
    ) -> bool {
        let want = self.swatt.attest_with_extra(expected, challenge, regions, extra);
        constant_time::eq(&want, response)
    }

    /// Checks a response against expected region contents given directly
    /// as `(start, end, bytes)` slices — no 64 KiB expected-memory image is
    /// materialised, keeping the per-proof verifier path allocation-light.
    ///
    /// # Panics
    ///
    /// Panics if a slice length does not match its `start..=end` span.
    #[must_use]
    pub fn check_region_bytes(
        &self,
        challenge: &Challenge,
        regions: &[(u16, u16, &[u8])],
        extra: &[u8],
        response: &Digest,
    ) -> bool {
        let want = self.swatt.attest_region_bytes(challenge, regions, extra);
        constant_time::eq(&want, response)
    }

    /// Checks a response against `(start, end, content digest)` regions —
    /// the memoized counterpart of [`RaVerifier::check_region_bytes`], for
    /// callers holding precomputed region digests. Batched tag checks over
    /// many devices go through [`check_tags_lanes`] instead.
    #[must_use]
    pub fn check_region_digests(
        &self,
        challenge: &Challenge,
        regions: &[(u16, u16, &Digest)],
        extra: &[u8],
        response: &Digest,
    ) -> bool {
        let want = self.swatt.attest_region_digests(challenge, regions, extra);
        constant_time::eq(&want, response)
    }

    /// The verifier's HMAC key context (shared with the device), for
    /// multi-buffer tag checks.
    #[must_use]
    pub fn hmac_key(&self) -> &HmacKey {
        self.swatt.hmac_key()
    }
}

/// One lane of a batched tag check (see [`check_tags_lanes`]): everything
/// needed to recompute one device's expected tag from memoized region
/// digests.
#[derive(Clone, Copy, Debug)]
pub struct TagLane<'a> {
    /// The verifier holding the key this tag must verify under.
    pub ra: &'a RaVerifier,
    /// The challenge the proof answers.
    pub challenge: &'a Challenge,
    /// Attested regions as `(start, end, content digest)`.
    pub regions: &'a [(u16, u16, &'a Digest)],
    /// Metadata bytes bound after the regions (APEX PoX metadata).
    pub extra: &'a [u8],
    /// The tag the device reported.
    pub tag: &'a Digest,
}

/// Composed MAC-message capacity per lane: challenge (32) + up to 4 regions
/// of `bounds (4) ‖ digest (32)` + up to 16 extra bytes.
const MAX_LANE_MSG: usize = 32 + 4 * 36 + 16;

/// Checks many independent attestation tags in multi-buffer lanes.
///
/// Each lane's expected MAC message is composed exactly as
/// [`SwAtt::attest_region_digests`] would absorb it, then all messages are
/// MACed in lockstep via [`hacl::sha256_mb::hmac_lanes`] (each under its
/// own lane's key) and compared in constant time. `ok` is parallel to
/// `lanes`. Allocation-free: messages are composed into fixed stack
/// buffers.
///
/// # Panics
///
/// Panics if `lanes` and `ok` differ in length, if a lane exceeds 4 regions
/// or 16 extra bytes, or if the lanes compose MAC messages of different
/// lengths (lockstep requires equal lengths; per-op batches satisfy this by
/// construction).
pub fn check_tags_lanes(lanes: &[TagLane<'_>], ok: &mut [bool]) {
    assert_eq!(lanes.len(), ok.len(), "one verdict slot per lane");
    for (lanes, ok) in lanes.chunks(MAX_LANES).zip(ok.chunks_mut(MAX_LANES)) {
        let n = lanes.len();
        let mut bufs = [[0u8; MAX_LANE_MSG]; MAX_LANES];
        let mut msg_len = 0;
        for (l, lane) in lanes.iter().enumerate() {
            let need = 32 + lane.regions.len() * 36 + lane.extra.len();
            assert!(need <= MAX_LANE_MSG, "lane MAC message exceeds {MAX_LANE_MSG} bytes");
            let buf = &mut bufs[l];
            let mut w = 0;
            buf[w..w + 32].copy_from_slice(lane.challenge.as_bytes());
            w += 32;
            for (start, end, digest) in lane.regions {
                buf[w..w + 2].copy_from_slice(&start.to_le_bytes());
                buf[w + 2..w + 4].copy_from_slice(&end.to_le_bytes());
                buf[w + 4..w + 36].copy_from_slice(&digest[..]);
                w += 36;
            }
            buf[w..w + lane.extra.len()].copy_from_slice(lane.extra);
            w += lane.extra.len();
            if l == 0 {
                msg_len = w;
            } else {
                assert_eq!(w, msg_len, "lanes must compose equal-length MAC messages");
            }
        }
        let keys: [&HmacKey; MAX_LANES] =
            core::array::from_fn(|l| lanes[l.min(n - 1)].ra.hmac_key());
        let msgs: [&[u8]; MAX_LANES] = core::array::from_fn(|l| &bufs[l][..msg_len]);
        let mut tags = [[0u8; 32]; MAX_LANES];
        sha256_mb::hmac_lanes(&keys[..n], &msgs[..n], &mut tags[..n]);
        for (l, lane) in lanes.iter().enumerate() {
            ok[l] = constant_time::eq(&tags[l], lane.tag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_device_passes_modified_fails() {
        let ks = KeyStore::from_seed(11);
        let device = SwAtt::new(ks.clone());
        let vrf = RaVerifier::new(ks);

        let mut firmware = Platform::new();
        firmware.load_words(0xE000, &[0x4303, 0x4130]);
        let mut device_mem = firmware.clone();

        let c = Challenge::derive(b"round", 0);
        let resp = device.attest(&device_mem, &c, &[(0xE000, 0xE003)]);
        assert!(vrf.check(&firmware, &c, &[(0xE000, 0xE003)], &resp));

        // Malware flips one instruction.
        device_mem.load_words(0xE000, &[0x4304]);
        let resp = device.attest(&device_mem, &c, &[(0xE000, 0xE003)]);
        assert!(!vrf.check(&firmware, &c, &[(0xE000, 0xE003)], &resp));
    }

    #[test]
    fn replayed_response_fails_fresh_challenge() {
        let ks = KeyStore::from_seed(12);
        let device = SwAtt::new(ks.clone());
        let vrf = RaVerifier::new(ks);
        let p = Platform::new();

        let c0 = Challenge::derive(b"round", 0);
        let old = device.attest(&p, &c0, &[(0xE000, 0xE003)]);
        let c1 = Challenge::derive(b"round", 1);
        assert!(!vrf.check(&p, &c1, &[(0xE000, 0xE003)], &old));
    }

    #[test]
    fn wrong_key_cannot_forge() {
        let device = SwAtt::new(KeyStore::from_seed(13));
        let vrf = RaVerifier::new(KeyStore::from_seed(14));
        let p = Platform::new();
        let c = Challenge::derive(b"round", 0);
        let resp = device.attest(&p, &c, &[(0, 3)]);
        assert!(!vrf.check(&p, &c, &[(0, 3)], &resp));
    }

    #[test]
    fn lane_tag_checks_match_scalar_checks() {
        // 9 lanes (crossing the MAX_LANES chunk boundary), each its own
        // device key and challenge; lane 4 carries a forged tag.
        let data = [0x11u8; 16];
        let digest = Sha256::digest(&data);
        let extra = [0xE5u8; 11];
        let ras: Vec<RaVerifier> =
            (0..9).map(|i| RaVerifier::new(KeyStore::from_seed(20 + i))).collect();
        let devices: Vec<SwAtt> = (0..9).map(|i| SwAtt::new(KeyStore::from_seed(20 + i))).collect();
        let challenges: Vec<Challenge> = (0..9).map(|i| Challenge::derive(b"lane", i)).collect();
        let regions = [(0xE000u16, 0xE00Fu16, &digest)];
        let mut tags: Vec<Digest> = devices
            .iter()
            .zip(&challenges)
            .map(|(dev, c)| dev.attest_region_digests(c, &regions, &extra))
            .collect();
        tags[4][0] ^= 1;
        let lanes: Vec<TagLane<'_>> = (0..9)
            .map(|i| TagLane {
                ra: &ras[i],
                challenge: &challenges[i],
                regions: &regions,
                extra: &extra,
                tag: &tags[i],
            })
            .collect();
        let mut ok = [false; 9];
        check_tags_lanes(&lanes, &mut ok);
        for i in 0..9 {
            let scalar = ras[i].check_region_digests(&challenges[i], &regions, &extra, &tags[i]);
            assert_eq!(ok[i], scalar, "lane {i}");
            assert_eq!(ok[i], i != 4, "lane {i}");
        }
    }

    #[test]
    fn challenge_derivation_distinct() {
        assert_ne!(Challenge::derive(b"a", 0), Challenge::derive(b"a", 1));
        assert_ne!(Challenge::derive(b"a", 0), Challenge::derive(b"b", 0));
        assert_eq!(Challenge::derive(b"a", 0), Challenge::derive(b"a", 0));
    }
}
