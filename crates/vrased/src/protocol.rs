//! The Vrf ↔ Prv static-attestation protocol.

use crate::keystore::KeyStore;
use crate::swatt::SwAtt;
use hacl::{constant_time, Digest, Sha256};
use msp430::platform::Platform;

/// A 256-bit attestation challenge (nonce).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Challenge([u8; 32]);

impl Challenge {
    /// Wraps explicit nonce bytes.
    #[must_use]
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Self(bytes)
    }

    /// Derives a fresh challenge from a session label and counter — the
    /// deterministic stand-in for the verifier's RNG, so experiments are
    /// reproducible.
    #[must_use]
    pub fn derive(label: &[u8], counter: u64) -> Self {
        let mut h = Sha256::new();
        h.update(b"dialed-repro challenge");
        h.update(label);
        h.update(&counter.to_le_bytes());
        Self(h.finalize())
    }

    /// Raw bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

/// The verifier side of static RA: holds the shared key and the expected
/// memory contents.
#[derive(Clone, Debug)]
pub struct RaVerifier {
    swatt: SwAtt,
}

impl RaVerifier {
    /// A verifier sharing `keystore` with the device.
    #[must_use]
    pub fn new(keystore: KeyStore) -> Self {
        Self { swatt: SwAtt::new(keystore) }
    }

    /// Checks a device response against the expected memory image
    /// (constant-time tag comparison).
    #[must_use]
    pub fn check(
        &self,
        expected: &Platform,
        challenge: &Challenge,
        regions: &[(u16, u16)],
        response: &Digest,
    ) -> bool {
        let want = self.swatt.attest(expected, challenge, regions);
        constant_time::eq(&want, response)
    }

    /// Checks a response that bound extra metadata (used by APEX).
    #[must_use]
    pub fn check_with_extra(
        &self,
        expected: &Platform,
        challenge: &Challenge,
        regions: &[(u16, u16)],
        extra: &[u8],
        response: &Digest,
    ) -> bool {
        let want = self.swatt.attest_with_extra(expected, challenge, regions, extra);
        constant_time::eq(&want, response)
    }

    /// Checks a response against expected region contents given directly
    /// as `(start, end, bytes)` slices — no 64 KiB expected-memory image is
    /// materialised, keeping the per-proof verifier path allocation-light.
    ///
    /// # Panics
    ///
    /// Panics if a slice length does not match its `start..=end` span.
    #[must_use]
    pub fn check_region_bytes(
        &self,
        challenge: &Challenge,
        regions: &[(u16, u16, &[u8])],
        extra: &[u8],
        response: &Digest,
    ) -> bool {
        let want = self.swatt.attest_region_bytes(challenge, regions, extra);
        constant_time::eq(&want, response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_device_passes_modified_fails() {
        let ks = KeyStore::from_seed(11);
        let device = SwAtt::new(ks.clone());
        let vrf = RaVerifier::new(ks);

        let mut firmware = Platform::new();
        firmware.load_words(0xE000, &[0x4303, 0x4130]);
        let mut device_mem = firmware.clone();

        let c = Challenge::derive(b"round", 0);
        let resp = device.attest(&device_mem, &c, &[(0xE000, 0xE003)]);
        assert!(vrf.check(&firmware, &c, &[(0xE000, 0xE003)], &resp));

        // Malware flips one instruction.
        device_mem.load_words(0xE000, &[0x4304]);
        let resp = device.attest(&device_mem, &c, &[(0xE000, 0xE003)]);
        assert!(!vrf.check(&firmware, &c, &[(0xE000, 0xE003)], &resp));
    }

    #[test]
    fn replayed_response_fails_fresh_challenge() {
        let ks = KeyStore::from_seed(12);
        let device = SwAtt::new(ks.clone());
        let vrf = RaVerifier::new(ks);
        let p = Platform::new();

        let c0 = Challenge::derive(b"round", 0);
        let old = device.attest(&p, &c0, &[(0xE000, 0xE003)]);
        let c1 = Challenge::derive(b"round", 1);
        assert!(!vrf.check(&p, &c1, &[(0xE000, 0xE003)], &old));
    }

    #[test]
    fn wrong_key_cannot_forge() {
        let device = SwAtt::new(KeyStore::from_seed(13));
        let vrf = RaVerifier::new(KeyStore::from_seed(14));
        let p = Platform::new();
        let c = Challenge::derive(b"round", 0);
        let resp = device.attest(&p, &c, &[(0, 3)]);
        assert!(!vrf.check(&p, &c, &[(0, 3)], &resp));
    }

    #[test]
    fn challenge_derivation_distinct() {
        assert_ne!(Challenge::derive(b"a", 0), Challenge::derive(b"a", 1));
        assert_ne!(Challenge::derive(b"a", 0), Challenge::derive(b"b", 0));
        assert_eq!(Challenge::derive(b"a", 0), Challenge::derive(b"a", 0));
    }
}
