//! The residual VRASED hardware monitor.
//!
//! VRASED's verified monitor enforces seven LTL properties about key
//! isolation and SW-Att atomicity. Two of them are discharged *by
//! construction* in this reproduction (the key is not addressable; SW-Att
//! runs atomically between CPU steps). What remains observable on our bus is
//! protection of the attestation scratch region — the RAM SW-Att uses for
//! its stack/locals, which ordinary software and DMA must never touch while
//! an attestation is marked in-flight.

use msp430::cpu::Step;
use msp430::mem::{Access, AccessKind};
use std::fmt;

/// A reserved region guarded against CPU/DMA access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReservedRegion {
    /// First guarded address.
    pub start: u16,
    /// Last guarded address (inclusive).
    pub end: u16,
}

impl ReservedRegion {
    /// Does the region contain `addr`?
    #[must_use]
    pub fn contains(&self, addr: u16) -> bool {
        addr >= self.start && addr <= self.end
    }
}

/// Rule violations the monitor can flag.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RuleViolation {
    /// CPU touched the reserved attestation region.
    CpuAccess {
        /// Offending address.
        addr: u16,
        /// PC of the offending instruction.
        pc: u16,
    },
    /// DMA touched the reserved attestation region.
    DmaAccess {
        /// Offending address.
        addr: u16,
    },
}

impl fmt::Display for RuleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleViolation::CpuAccess { addr, pc } => {
                write!(f, "cpu access to reserved {addr:#06x} from pc {pc:#06x}")
            }
            RuleViolation::DmaAccess { addr } => {
                write!(f, "dma access to reserved {addr:#06x}")
            }
        }
    }
}

/// The monitor FSM: observes bus traffic, latches the first violation.
///
/// On real hardware a violation triggers an immediate MCU reset; callers
/// here check [`VrasedRules::violation`] and refuse to produce attestation
/// responses, which is observationally equivalent for the verifier.
#[derive(Clone, Debug)]
pub struct VrasedRules {
    region: ReservedRegion,
    violation: Option<RuleViolation>,
}

impl VrasedRules {
    /// Guards `region`.
    #[must_use]
    pub fn new(region: ReservedRegion) -> Self {
        Self { region, violation: None }
    }

    /// Feeds one executed CPU step.
    pub fn observe_step(&mut self, step: &Step) {
        if self.violation.is_some() {
            return;
        }
        for a in &step.accesses {
            if a.kind != AccessKind::Fetch && self.region.contains(a.addr) {
                self.violation = Some(RuleViolation::CpuAccess { addr: a.addr, pc: step.pc });
                return;
            }
        }
    }

    /// Feeds DMA bus events.
    pub fn observe_dma(&mut self, events: &[Access]) {
        if self.violation.is_some() {
            return;
        }
        for a in events {
            if self.region.contains(a.addr) {
                self.violation = Some(RuleViolation::DmaAccess { addr: a.addr });
                return;
            }
        }
    }

    /// The first violation, if any.
    #[must_use]
    pub fn violation(&self) -> Option<RuleViolation> {
        self.violation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp430::cpu::Cpu;
    use msp430::mem::Ram;
    use msp430::periph::Dma;
    use msp430::platform::Platform;

    const REGION: ReservedRegion = ReservedRegion { start: 0x0A00, end: 0x0AFF };

    #[test]
    fn clean_execution_flags_nothing() {
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x4035, 0x1234, 0x4582, 0x0200]); // mov #x,r5 ; mov r5,&0x200
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        let mut rules = VrasedRules::new(REGION);
        rules.observe_step(&cpu.step(&mut ram).unwrap());
        rules.observe_step(&cpu.step(&mut ram).unwrap());
        assert!(rules.violation().is_none());
    }

    #[test]
    fn cpu_write_into_reserved_region_flagged() {
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x40B2, 0xDEAD, 0x0A10]); // mov #0xDEAD, &0x0A10
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        let mut rules = VrasedRules::new(REGION);
        rules.observe_step(&cpu.step(&mut ram).unwrap());
        assert!(matches!(
            rules.violation(),
            Some(RuleViolation::CpuAccess { addr: 0x0A10, pc: 0xE000 })
        ));
    }

    #[test]
    fn cpu_read_of_reserved_region_flagged() {
        let mut ram = Ram::new();
        ram.load_words(0xE000, &[0x4216, 0x0A00]); // mov &0x0A00, r6
        let mut cpu = Cpu::new();
        cpu.set_pc(0xE000);
        let mut rules = VrasedRules::new(REGION);
        rules.observe_step(&cpu.step(&mut ram).unwrap());
        assert!(rules.violation().is_some());
    }

    #[test]
    fn dma_into_reserved_region_flagged() {
        let mut p = Platform::new();
        let mut rules = VrasedRules::new(REGION);
        let ev = p.dma_transfer(&Dma { dst: 0x0AFF, data: vec![1] });
        rules.observe_dma(&ev);
        assert!(matches!(rules.violation(), Some(RuleViolation::DmaAccess { addr: 0x0AFF })));
    }

    #[test]
    fn first_violation_latched() {
        let mut p = Platform::new();
        let mut rules = VrasedRules::new(REGION);
        let ev1 = p.dma_transfer(&Dma { dst: 0x0A00, data: vec![1] });
        let ev2 = p.dma_transfer(&Dma { dst: 0x0A80, data: vec![1] });
        rules.observe_dma(&ev1);
        rules.observe_dma(&ev2);
        assert!(matches!(rules.violation(), Some(RuleViolation::DmaAccess { addr: 0x0A00 })));
    }
}
