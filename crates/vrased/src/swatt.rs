//! The SW-Att attestation service:
//! `HMAC(K, challenge ‖ (bounds ‖ SHA-256(region))* ‖ extra)`.
//!
//! Each attested region enters the MAC as its inclusive `(start, end)`
//! bounds followed by the SHA-256 digest of its contents (rather than the
//! raw contents). By SHA-256 collision resistance this binds the region
//! bytes exactly as strongly, and it buys the verifier two things:
//!
//! * the expected-region digest is a pure function of the op image, so a
//!   fleet verifier memoizes it per `(op, image-version)` instead of
//!   rehashing kilobytes of ER per proof;
//! * every MAC message has a small fixed size per op, so a batch of
//!   independent proof MACs can be checked in multi-buffer lanes
//!   ([`hacl::sha256_mb`]) — equal lengths keep the lanes in lockstep
//!   through padding.

use crate::keystore::KeyStore;
use crate::protocol::Challenge;
use hacl::{Digest, HmacKey, Sha256};
use msp430::platform::Platform;

/// The device-side attestation routine.
///
/// Mirrors VRASED's SW-Att: reads prover memory without side effects and
/// MACs it under the protected key together with the verifier's challenge.
/// Executed atomically (the simulated CPU is not running while it executes,
/// exactly as VRASED's hardware guarantees non-interruptible execution).
///
/// The HMAC pads are derived from the key once at construction
/// ([`HmacKey`]); each attestation starts from a flat copy of the keyed
/// state, so high-rate verifiers (batch workers checking thousands of
/// proofs under one device key) skip the per-MAC key schedule.
#[derive(Clone, Debug)]
pub struct SwAtt {
    key: HmacKey,
}

impl SwAtt {
    /// Binds the service to the device key.
    #[must_use]
    pub fn new(keystore: KeyStore) -> Self {
        Self { key: HmacKey::new(keystore.key_material()) }
    }

    /// Attests `regions` (inclusive `(start, end)` address pairs) of the
    /// platform's memory.
    #[must_use]
    pub fn attest(
        &self,
        platform: &Platform,
        challenge: &Challenge,
        regions: &[(u16, u16)],
    ) -> Digest {
        self.attest_with_extra(platform, challenge, regions, &[])
    }

    /// Attests memory regions plus caller-supplied `extra` bytes.
    ///
    /// APEX uses `extra` to bind the PoX metadata (region bounds and the
    /// EXEC flag) into the same MAC.
    #[must_use]
    pub fn attest_with_extra(
        &self,
        platform: &Platform,
        challenge: &Challenge,
        regions: &[(u16, u16)],
        extra: &[u8],
    ) -> Digest {
        let mut mac = self.key.begin();
        mac.update(challenge.as_bytes());
        for (start, end) in regions {
            mac.update(&start.to_le_bytes());
            mac.update(&end.to_le_bytes());
            mac.update(&Sha256::digest(platform.mem_range(*start, *end)));
        }
        mac.update(extra);
        mac.finalize()
    }

    /// Attests regions given directly as `(start, end, bytes)` slices.
    ///
    /// Produces exactly the tag [`SwAtt::attest_with_extra`] would for a
    /// platform holding `bytes` at `start..=end` — but without building a
    /// 64 KiB memory image first. Verifiers checking many proofs use this
    /// to reconstruct expected tags allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if a slice length does not match its `start..=end` span.
    #[must_use]
    pub fn attest_region_bytes(
        &self,
        challenge: &Challenge,
        regions: &[(u16, u16, &[u8])],
        extra: &[u8],
    ) -> Digest {
        let mut mac = self.key.begin();
        mac.update(challenge.as_bytes());
        for (start, end, bytes) in regions {
            assert_eq!(
                bytes.len(),
                usize::from(*end - *start) + 1,
                "region bytes must span start..=end"
            );
            mac.update(&start.to_le_bytes());
            mac.update(&end.to_le_bytes());
            mac.update(&Sha256::digest(bytes));
        }
        mac.update(extra);
        mac.finalize()
    }

    /// Attests regions given as `(start, end, content digest)` — the
    /// memoized form of [`SwAtt::attest_region_bytes`]: callers that
    /// already hold `SHA-256(bytes)` (e.g. a fleet verifier caching the
    /// expected-ER digest per op image) skip rehashing the region.
    #[must_use]
    pub fn attest_region_digests(
        &self,
        challenge: &Challenge,
        regions: &[(u16, u16, &Digest)],
        extra: &[u8],
    ) -> Digest {
        let mut mac = self.key.begin();
        mac.update(challenge.as_bytes());
        for (start, end, digest) in regions {
            mac.update(&start.to_le_bytes());
            mac.update(&end.to_le_bytes());
            mac.update(&digest[..]);
        }
        mac.update(extra);
        mac.finalize()
    }

    /// The precomputed HMAC key context, for multi-buffer tag checks that
    /// MAC several devices' messages in lockstep.
    #[must_use]
    pub fn hmac_key(&self) -> &HmacKey {
        &self.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SwAtt, Platform, Challenge) {
        let mut p = Platform::new();
        p.load_words(0xE000, &[0x1234, 0x5678]);
        (SwAtt::new(KeyStore::from_seed(3)), p, Challenge::derive(b"t", 0))
    }

    #[test]
    fn deterministic_for_same_state() {
        let (att, p, c) = setup();
        assert_eq!(
            att.attest(&p, &c, &[(0xE000, 0xE003)]),
            att.attest(&p, &c, &[(0xE000, 0xE003)])
        );
    }

    #[test]
    fn sensitive_to_memory_challenge_region_and_key() {
        let (att, p, c) = setup();
        let base = att.attest(&p, &c, &[(0xE000, 0xE003)]);

        let mut p2 = p.clone();
        p2.load_words(0xE002, &[0x5679]);
        assert_ne!(att.attest(&p2, &c, &[(0xE000, 0xE003)]), base, "memory");

        let c2 = Challenge::derive(b"t", 1);
        assert_ne!(att.attest(&p, &c2, &[(0xE000, 0xE003)]), base, "challenge");

        assert_ne!(att.attest(&p, &c, &[(0xE000, 0xE001)]), base, "region");

        let att2 = SwAtt::new(KeyStore::from_seed(4));
        assert_ne!(att2.attest(&p, &c, &[(0xE000, 0xE003)]), base, "key");
    }

    #[test]
    fn region_bounds_are_bound_into_mac() {
        // Same bytes at two different regions must not collide: the region
        // addresses are MACed, preventing relocation attacks.
        let att = SwAtt::new(KeyStore::from_seed(9));
        let c = Challenge::derive(b"t", 0);
        let mut p = Platform::new();
        p.load_words(0xE000, &[0xAAAA]);
        p.load_words(0xF000, &[0xAAAA]);
        assert_ne!(
            att.attest(&p, &c, &[(0xE000, 0xE001)]),
            att.attest(&p, &c, &[(0xF000, 0xF001)])
        );
    }

    #[test]
    fn digest_form_matches_bytes_and_platform_forms() {
        // The three attestation entry points must agree on the tag: the
        // digest form is the memoized fast path for the same MAC message.
        let (att, p, c) = setup();
        let bytes = p.mem_range(0xE000, 0xE003);
        let digest = Sha256::digest(bytes);
        let want = att.attest_with_extra(&p, &c, &[(0xE000, 0xE003)], &[7]);
        assert_eq!(att.attest_region_bytes(&c, &[(0xE000, 0xE003, bytes)], &[7]), want);
        assert_eq!(att.attest_region_digests(&c, &[(0xE000, 0xE003, &digest)], &[7]), want);
    }

    #[test]
    fn extra_bytes_are_bound() {
        let (att, p, c) = setup();
        assert_ne!(
            att.attest_with_extra(&p, &c, &[(0xE000, 0xE001)], &[1]),
            att.attest_with_extra(&p, &c, &[(0xE000, 0xE001)], &[0]),
        );
    }
}
