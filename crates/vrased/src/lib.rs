//! VRASED-style static remote attestation substrate.
//!
//! VRASED (USENIX Security'19) is a formally verified hardware/software
//! co-design for remote attestation on the MSP430: a symmetric key in ROM
//! readable only by an atomic, ROM-resident software routine (`SW-Att`)
//! computes `HMAC(K, challenge ‖ attested memory)`, and a small hardware
//! monitor enforces key isolation and atomicity. APEX builds its
//! proof-of-execution on top of it, and DIALED inherits the whole stack.
//!
//! # Substitution note (see DESIGN.md)
//!
//! We do not simulate the ~4k-cycle SW-Att routine instruction by
//! instruction. [`swatt::SwAtt`] is an *atomic device service* with the same
//! interface and the same access rules, enforced here:
//!
//! * the key lives in [`keystore::KeyStore`], outside the CPU-addressable
//!   address space — software cannot read it by construction, mirroring
//!   VRASED's hardware rule that any CPU/DMA access to key memory resets the
//!   device;
//! * [`rules::VrasedRules`] is the residual hardware monitor: it watches the
//!   bus for accesses to the reserved attestation scratch region, the analog
//!   of VRASED's `DMA_(K)`/`AC(K)` properties;
//! * attestation reads memory via side-effect-free `peek`s, like the real
//!   SW-Att reading memory-bus snapshots.
//!
//! DIALED's security argument consumes only the *interface*: an unforgeable
//! MAC over prover-chosen memory, with a verifier-chosen challenge.
//!
//! # Example
//!
//! ```
//! use vrased::{keystore::KeyStore, protocol::{Challenge, RaVerifier}, swatt::SwAtt};
//! use msp430::platform::Platform;
//!
//! let ks = KeyStore::from_seed(7);
//! let device = SwAtt::new(ks.clone());
//! let verifier = RaVerifier::new(ks);
//!
//! let mut platform = Platform::new();
//! platform.load_words(0xE000, &[0x4303]); // the "firmware"
//!
//! let chal = Challenge::derive(b"session", 1);
//! let report = device.attest(&platform, &chal, &[(0xE000, 0xE001)]);
//! let mut expected = Platform::new();
//! expected.load_words(0xE000, &[0x4303]);
//! assert!(verifier.check(&expected, &chal, &[(0xE000, 0xE001)], &report));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod keystore;
pub mod protocol;
pub mod rules;
pub mod swatt;

pub use keystore::KeyStore;
pub use protocol::{check_tags_lanes, Challenge, RaVerifier, TagLane};
pub use swatt::SwAtt;
