//! The hardware-protected attestation key.
//!
//! On a real VRASED device the key sits in a ROM region that the hardware
//! monitor makes unreadable to everything except SW-Att. Here the key lives
//! *outside* the simulated 64 KiB address space entirely: no instruction the
//! prover executes can ever address it, which is the same guarantee by
//! construction. Only [`crate::swatt::SwAtt`] (the trusted service) and the
//! verifier hold a [`KeyStore`].

use hacl::Sha256;

/// A 256-bit device attestation key.
///
/// Deliberately does not implement `Debug`-with-contents, `Display`,
/// `Serialize` or accessors returning the raw key to non-crate code.
#[derive(Clone)]
pub struct KeyStore {
    key: [u8; 32],
}

impl std::fmt::Debug for KeyStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "KeyStore {{ <protected> }}")
    }
}

impl KeyStore {
    /// Installs an explicit key (e.g. provisioned at manufacture).
    #[must_use]
    pub fn new(key: [u8; 32]) -> Self {
        Self { key }
    }

    /// Derives a key deterministically from a seed — convenient for tests
    /// and examples that need matching prover/verifier keys.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut h = Sha256::new();
        h.update(b"dialed-repro key derivation");
        h.update(&seed.to_le_bytes());
        Self { key: h.finalize() }
    }

    /// Key bytes, visible only within the attestation substrate.
    pub(crate) fn key_material(&self) -> &[u8; 32] {
        &self.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_derivation_is_deterministic_and_distinct() {
        assert_eq!(KeyStore::from_seed(1).key, KeyStore::from_seed(1).key);
        assert_ne!(KeyStore::from_seed(1).key, KeyStore::from_seed(2).key);
    }

    #[test]
    fn debug_never_leaks_key() {
        let ks = KeyStore::new([0xAB; 32]);
        let s = format!("{ks:?}");
        assert!(!s.contains("ab"), "{s}");
        assert!(s.contains("protected"));
    }
}
