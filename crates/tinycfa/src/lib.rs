//! Tiny-CFA: control-flow attestation via automated assembly
//! instrumentation over APEX.
//!
//! Tiny-CFA (IEEE ESL'21, reference \[9\] in the DIALED paper) instruments every
//! control-flow-altering instruction of an attested operation so that the
//! *destination* of each executed transfer is appended to a log (CF-Log)
//! held in the APEX Output Range. APEX makes the log unforgeable; the
//! verifier replays the program against it and detects any control-flow
//! hijack.
//!
//! # The instrumentation contract
//!
//! * register `r4` is reserved as the log stack pointer `R`, initialised by
//!   the (untrusted) caller to the top of OR and checked at the operation's
//!   entry (`cmp #R_TOP, r4 ; jne $`) — a wrong value aborts;
//! * each logged value is written with `mov …, 0(r4)` followed by `decd r4`
//!   and the overflow check `cmp #OR_MIN, r4 ; jn $`;
//! * the abort idiom is a branch-to-self spin (`jne $` / `jn $`): execution
//!   never reaches the legal ER exit, so APEX never latches EXEC and the
//!   verifier sees the violation. (The paper jumps to an abort label `.L11`;
//!   a spin has identical security semantics and cannot go out of jump
//!   range.)
//! * log blocks are wrapped in `push sr … pop sr` so that condition flags
//!   are preserved — required for flag chains like `cmp …; jz A; jl B`,
//!   which the paper's listings gloss over;
//! * conditional branches are rewritten into a taken/fall-through diamond
//!   so that *both* outcomes log their destination, making CF-Log
//!   self-contained even without data knowledge.
//!
//! See [`pass::instrument`] for the entry point and [`policy::LogPolicy`]
//! for the paper-faithful (`AllTransfers`) vs. ablation (`IndirectOnly`)
//! variants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cflog;
pub mod pass;
pub mod policy;

pub use cflog::OrStack;
pub use pass::{instrument, CfaConfig, PassError};
pub use policy::LogPolicy;
