//! Which control-flow transfers get logged.

use msp430_asm::{TOperand, Template};
use serde::{Deserialize, Serialize};

/// CF-Log coverage policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum LogPolicy {
    /// Log the destination of *every* control-flow-altering instruction —
    /// the paper's Tiny-CFA behaviour.
    #[default]
    AllTransfers,
    /// Log only transfers whose destination is not statically known
    /// (returns, indirect calls/branches, `reti`). Conditional and direct
    /// branches are reconstructed by the verifier's abstract execution —
    /// this is the LiteHAX-style optimisation evaluated as an ablation.
    IndirectOnly,
}

impl LogPolicy {
    /// Does this policy require instrumenting `t`?
    ///
    /// `t` must already be a control-flow-altering instruction.
    #[must_use]
    pub fn wants(&self, t: &Template) -> bool {
        match self {
            LogPolicy::AllTransfers => true,
            LogPolicy::IndirectOnly => match t {
                Template::Jcc { .. } => false,
                Template::One { sd, .. } => !matches!(sd, TOperand::Imm(_)),
                Template::Two { src, .. } => !matches!(src, TOperand::Imm(_)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msp430::isa::{Cond, Op1, Op2, Size};
    use msp430::regs::Reg;
    use msp430_asm::Expr;

    fn call_imm() -> Template {
        Template::One { op: Op1::Call, size: Size::Word, sd: TOperand::Imm(Expr::num(0xF000)) }
    }

    fn ret() -> Template {
        Template::Two {
            op: Op2::Mov,
            size: Size::Word,
            src: TOperand::IndirectInc(Reg::SP),
            dst: TOperand::Reg(Reg::PC),
        }
    }

    #[test]
    fn all_transfers_logs_everything() {
        let p = LogPolicy::AllTransfers;
        assert!(p.wants(&call_imm()));
        assert!(p.wants(&ret()));
        assert!(p.wants(&Template::Jcc { cond: Cond::Z, target: Expr::sym("l") }));
    }

    #[test]
    fn indirect_only_skips_static_destinations() {
        let p = LogPolicy::IndirectOnly;
        assert!(!p.wants(&call_imm()));
        assert!(!p.wants(&Template::Jcc { cond: Cond::Z, target: Expr::sym("l") }));
        assert!(p.wants(&ret()));
        let call_reg =
            Template::One { op: Op1::Call, size: Size::Word, sd: TOperand::Reg(Reg::R11) };
        assert!(p.wants(&call_reg));
    }
}
