//! Reading the OR log stack.
//!
//! CF-Log and I-Log share one downward-growing word stack inside OR
//! (DIALED feature F5). `R = r4` starts at the top word slot and decrements
//! by 2 per entry; entry *i* therefore lives at `r_top − 2·i`.

/// A read-only view of an OR snapshot as a log stack.
#[derive(Clone, Copy, Debug)]
pub struct OrStack<'a> {
    bytes: &'a [u8],
    or_min: u16,
    or_max: u16,
}

impl<'a> OrStack<'a> {
    /// Wraps OR bytes spanning `or_min..=or_max`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` does not exactly cover the region.
    #[must_use]
    pub fn new(bytes: &'a [u8], or_min: u16, or_max: u16) -> Self {
        assert_eq!(
            bytes.len(),
            usize::from(or_max - or_min) + 1,
            "OR snapshot length must match region"
        );
        Self { bytes, or_min, or_max }
    }

    /// The initial value of `R` (the topmost word slot).
    #[must_use]
    pub fn r_top(&self) -> u16 {
        self.or_max & !1
    }

    /// Number of word slots in the stack.
    #[must_use]
    pub fn capacity(&self) -> usize {
        (usize::from(self.r_top() - self.or_min) + 2) / 2
    }

    /// The `idx`-th logged word (0 = first logged entry).
    ///
    /// Returns `None` past the region's capacity.
    #[must_use]
    pub fn entry(&self, idx: usize) -> Option<u16> {
        if idx >= self.capacity() {
            return None;
        }
        let addr = self.r_top() - 2 * idx as u16;
        let off = usize::from(addr - self.or_min);
        // Defensive: with a validated config (`or_max` odd) the top slot is
        // always two full bytes, but an unvalidated region whose `r_top`
        // equals `or_max` would otherwise read one byte past the snapshot.
        let hi = self.bytes.get(off + 1).copied()?;
        Some(u16::from(self.bytes[off]) | (u16::from(hi) << 8))
    }

    /// The first `n` entries, or `None` if the region cannot hold `n`
    /// entries (callers must see truncation, not a silently short vector).
    #[must_use]
    pub fn entries(&self, n: usize) -> Option<Vec<u16>> {
        (0..n).map(|i| self.entry(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_read_top_down() {
        // Region 0x0600..=0x0607: slots at 0x0606, 0x0604, 0x0602, 0x0600.
        let mut bytes = vec![0u8; 8];
        bytes[6] = 0x34; // slot 0 = 0x1234
        bytes[7] = 0x12;
        bytes[4] = 0x78; // slot 1 = 0x5678
        bytes[5] = 0x56;
        let s = OrStack::new(&bytes, 0x0600, 0x0607);
        assert_eq!(s.r_top(), 0x0606);
        assert_eq!(s.capacity(), 4);
        assert_eq!(s.entry(0), Some(0x1234));
        assert_eq!(s.entry(1), Some(0x5678));
        assert_eq!(s.entry(4), None);
        assert_eq!(s.entries(2), Some(vec![0x1234, 0x5678]));
    }

    #[test]
    fn entries_reports_truncation() {
        // 4-slot region: asking for 5 entries must signal truncation
        // instead of silently returning 4.
        let bytes = vec![0u8; 8];
        let s = OrStack::new(&bytes, 0x0600, 0x0607);
        assert_eq!(s.entries(4).map(|v| v.len()), Some(4));
        assert_eq!(s.entries(5), None);
    }

    #[test]
    fn even_or_max_top_slot_is_out_of_bounds_not_a_panic() {
        // Regression: a region ending on an even address (half a top slot)
        // made `entry(0)` read one past the snapshot. `PoxConfig` now
        // rejects such regions; `OrStack` itself must stay total anyway.
        let bytes = vec![0u8; 7]; // 0x0600..=0x0606, r_top = 0x0606
        let s = OrStack::new(&bytes, 0x0600, 0x0606);
        assert_eq!(s.r_top(), 0x0606);
        assert_eq!(s.entry(0), None, "truncated top slot must not be readable");
        assert_eq!(s.entry(1), Some(0), "full slots below the top stay readable");
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn wrong_length_panics() {
        let bytes = vec![0u8; 4];
        let _ = OrStack::new(&bytes, 0x0600, 0x0607);
    }
}
