//! The Tiny-CFA instrumentation pass.

use crate::policy::LogPolicy;
use msp430::regs::Reg;
use msp430_asm::{parse_snippet, Expr, Item, Program, SourceLine, Stmt, TOperand, Template};
use std::fmt;

/// Pass configuration: the OR bounds (byte-inclusive) and the log policy.
#[derive(Clone, Copy, Debug)]
pub struct CfaConfig {
    /// First OR byte.
    pub or_min: u16,
    /// Last OR byte (inclusive).
    pub or_max: u16,
    /// Coverage policy.
    pub policy: LogPolicy,
}

impl CfaConfig {
    /// The initial `R` value checked at entry (top word slot of OR).
    #[must_use]
    pub fn r_top(&self) -> u16 {
        self.or_max & !1
    }
}

/// Instrumentation failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PassError {
    /// The operation entry label was not found.
    OpLabelNotFound(String),
    /// An original instruction uses the reserved register `r4`.
    ReservedRegister {
        /// Source line.
        line: usize,
    },
    /// A construct the pass cannot instrument.
    Unsupported {
        /// Source line.
        line: usize,
        /// Why.
        msg: String,
    },
    /// Internal snippet failed to parse (a pass bug if it ever fires).
    Snippet(String),
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::OpLabelNotFound(l) => write!(f, "operation label `{l}` not found"),
            PassError::ReservedRegister { line } => {
                write!(f, "line {line}: r4 is reserved for the log stack pointer")
            }
            PassError::Unsupported { line, msg } => write!(f, "line {line}: {msg}"),
            PassError::Snippet(m) => write!(f, "internal snippet error: {m}"),
        }
    }
}

impl std::error::Error for PassError {}

/// Renders the canonical log block:
///
/// ```text
/// push sr          ; only when the condition codes are live here
/// mov <src>, 0(r4)
/// decd r4
/// cmp #<or_min>, r4
/// jn $             ; abort spin on overflow
/// pop sr
/// ```
///
/// `preserve` comes from [`msp430_asm::ast::flags_live_from`]: when the
/// flags are provably dead at the insertion point the `push sr`/`pop sr`
/// pair (4 bytes, 5 cycles) is elided — the same liveness optimisation a
/// production instrumenter performs. Shared with the DIALED pass.
#[must_use]
pub fn log_block_text(src: &str, or_min: u16, preserve: bool) -> String {
    let body = format!(" mov {src}, 0(r4)\n decd r4\n cmp #{or_min}, r4\n jn $\n");
    if preserve {
        format!(" push sr\n{body} pop sr\n")
    } else {
        body
    }
}

/// Does the expression reference `$` (position-dependent)?
fn expr_uses_here(e: &Expr) -> bool {
    match e {
        Expr::Here => true,
        Expr::Num(_) | Expr::Sym(_) => false,
        Expr::Add(a, b) | Expr::Sub(a, b) => expr_uses_here(a) || expr_uses_here(b),
        Expr::Neg(a) => expr_uses_here(a),
    }
}

fn operand_uses_reg(o: &TOperand, r: Reg) -> bool {
    match o {
        TOperand::Reg(x)
        | TOperand::Indexed(_, x)
        | TOperand::Indirect(x)
        | TOperand::IndirectInc(x) => *x == r,
        _ => false,
    }
}

fn template_uses_reg(t: &Template, r: Reg) -> bool {
    match t {
        Template::Jcc { .. } => false,
        Template::One { sd, .. } => operand_uses_reg(sd, r),
        Template::Two { src, dst, .. } => operand_uses_reg(src, r) || operand_uses_reg(dst, r),
    }
}

/// Renders the *value* of a branch/call operand as a source operand for the
/// log `mov`, accounting for the `push sr` that shifts SP by 2 inside the
/// block.
fn branch_value_text(sd: &TOperand, line: usize) -> Result<String, PassError> {
    let no_here = |e: &Expr| -> Result<(), PassError> {
        if expr_uses_here(e) {
            Err(PassError::Unsupported {
                line,
                msg: "`$`-relative branch target cannot be logged; use a label".into(),
            })
        } else {
            Ok(())
        }
    };
    Ok(match sd {
        TOperand::Imm(e) => {
            no_here(e)?;
            format!("#{e}")
        }
        TOperand::Reg(Reg::R1) => {
            return Err(PassError::Unsupported {
                line,
                msg: "branch through SP register is not instrumentable".into(),
            })
        }
        TOperand::Reg(r) => format!("{r}"),
        TOperand::Indirect(Reg::R1) | TOperand::IndirectInc(Reg::R1) => "2(r1)".to_string(),
        TOperand::Indirect(r) | TOperand::IndirectInc(r) => format!("@{r}"),
        TOperand::Indexed(e, Reg::R1) => {
            no_here(e)?;
            format!("{e}+2(r1)")
        }
        TOperand::Indexed(e, r) => {
            no_here(e)?;
            format!("{e}({r})")
        }
        TOperand::Symbolic(e) => {
            no_here(e)?;
            format!("{e}")
        }
        TOperand::Absolute(e) => {
            no_here(e)?;
            format!("&{e}")
        }
    })
}

/// Instruments `program` for control-flow attestation.
///
/// `op_label` names the operation's entry point; the r4 entry check is
/// inserted immediately after it.
///
/// # Errors
///
/// See [`PassError`].
pub fn instrument(
    program: &Program,
    op_label: &str,
    cfg: &CfaConfig,
) -> Result<Program, PassError> {
    let mut out = Program::new();
    let mut n = 0usize;
    let mut found = false;
    let snip = |text: &str| -> Result<Vec<SourceLine>, PassError> {
        parse_snippet(text).map_err(|e| PassError::Snippet(e.to_string()))
    };

    for (idx, line) in program.lines.iter().enumerate() {
        // Reserved-register check applies to every original instruction.
        if let Item::Stmt(Stmt::Insn(t)) = &line.item {
            if !line.synthetic && template_uses_reg(t, Reg::R4) {
                return Err(PassError::ReservedRegister { line: line.line });
            }
        }

        match &line.item {
            Item::Label(l) if l == op_label => {
                out.lines.push(line.clone());
                out.lines.extend(snip(&format!(" cmp #{}, r4\n jne $\n", cfg.r_top()))?);
                found = true;
            }
            Item::Stmt(Stmt::Insn(t))
                if !line.synthetic && t.alters_control_flow() && cfg.policy.wants(t) =>
            {
                n += 1;
                emit_cf(&mut out, program, idx, t, n, cfg, &snip)?;
            }
            Item::Stmt(Stmt::Insn(t)) if !line.synthetic => {
                // F5 write checks: no store may land inside [R, OR_max].
                let preserve = msp430_asm::ast::flags_live_from(&program.lines, idx);
                if let Some(text) = write_check_text(t, &mut n, cfg, line.line, preserve)? {
                    out.lines.extend(snip(&text)?);
                }
                out.lines.push(line.clone());
            }
            _ => out.lines.push(line.clone()),
        }
    }

    if !found {
        return Err(PassError::OpLabelNotFound(op_label.to_string()));
    }
    Ok(out)
}

/// F5: guard a dynamically-addressed store against the live log region
/// `[R, OR_max]`. Only indexed destinations have runtime-computed addresses
/// (`@Rn` destination sugar lowers to `0(Rn)`); static destinations inside
/// OR are rejected at instrumentation time, and static destinations outside
/// OR can never reach `[R, OR_max] ⊆ OR`.
///
/// The emitted block aborts (spin) when `R ≤ EA ≤ OR_max`:
///
/// ```text
/// push sr
/// push rS
/// mov Rn, rS
/// add #x, rS          ; (+4 compensation when Rn is SP)
/// cmp r4, rS
/// jlo __wc<i>_ok      ; EA below R: untouched log capacity
/// cmp #<or_max+1>, rS
/// jhs __wc<i>_ok      ; EA above OR
/// jmp $               ; illegal write → abort
/// __wc<i>_ok:
/// pop rS
/// pop sr
/// ```
fn write_check_text(
    t: &Template,
    n: &mut usize,
    cfg: &CfaConfig,
    line: usize,
    preserve: bool,
) -> Result<Option<String>, PassError> {
    let Template::Two { op, dst, .. } = t else { return Ok(None) };
    if !op.writes_dst() {
        return Ok(None);
    }
    match dst {
        TOperand::Symbolic(e) | TOperand::Absolute(e) => {
            // Static destination: check at instrumentation time when the
            // address is a literal; symbolic addresses resolve at assembly
            // and benign programs never name the OR region.
            if let Expr::Num(v) = e {
                let v = *v as u16;
                if v >= cfg.or_min && v <= cfg.or_max {
                    return Err(PassError::Unsupported {
                        line,
                        msg: format!("static write into the OR log region ({v:#06x})"),
                    });
                }
            }
            Ok(None)
        }
        TOperand::Indexed(e, r) => {
            if expr_uses_here(e) {
                return Err(PassError::Unsupported {
                    line,
                    msg: "`$`-relative store address cannot be checked".into(),
                });
            }
            if *r == Reg::R4 {
                return Err(PassError::ReservedRegister { line });
            }
            if *r == Reg::R0 {
                return Err(PassError::Unsupported {
                    line,
                    msg: "pc-based stores are not instrumentable".into(),
                });
            }
            *n += 1;
            let i = *n;
            let scratch = pick_scratch_excluding(t);
            // SP shifts by 2 per push active inside the block.
            let shift = if preserve { 4 } else { 2 };
            let ea_setup = if *r == Reg::R1 {
                format!(" mov r1, {scratch}\n add #{e}+{shift}, {scratch}\n")
            } else {
                format!(" mov {r}, {scratch}\n add #{e}, {scratch}\n")
            };
            let above = u32::from(cfg.or_max) + 1;
            let body = format!(
                " push {scratch}\n{ea_setup} cmp r4, {scratch}\n jlo __wc{i}_ok\n cmp #{above}, {scratch}\n jhs __wc{i}_ok\n jmp $\n__wc{i}_ok:\n pop {scratch}\n"
            );
            Ok(Some(if preserve { format!(" push sr\n{body} pop sr\n") } else { body }))
        }
        _ => Ok(None),
    }
}

/// Scratch register not used by the instruction's operands.
fn pick_scratch_excluding(t: &Template) -> Reg {
    let mut used = Vec::new();
    let mut add = |o: &TOperand| match o {
        TOperand::Reg(r)
        | TOperand::Indexed(_, r)
        | TOperand::Indirect(r)
        | TOperand::IndirectInc(r) => used.push(*r),
        _ => {}
    };
    match t {
        Template::Jcc { .. } => {}
        Template::One { sd, .. } => add(sd),
        Template::Two { src, dst, .. } => {
            add(src);
            add(dst);
        }
    }
    for idx in (5..16).rev() {
        let r = Reg::from_index(idx);
        if r != Reg::R4 && !used.contains(&r) {
            return r;
        }
    }
    Reg::R15
}

fn emit_cf(
    out: &mut Program,
    program: &Program,
    idx: usize,
    t: &Template,
    n: usize,
    cfg: &CfaConfig,
    snip: &impl Fn(&str) -> Result<Vec<SourceLine>, PassError>,
) -> Result<(), PassError> {
    let original = &program.lines[idx];
    let or_min = cfg.or_min;
    match t {
        Template::Jcc { cond, target } => {
            if expr_uses_here(target) {
                return Err(PassError::Unsupported {
                    line: original.line,
                    msg: "`$`-relative jump target cannot be instrumented; use a label".into(),
                });
            }
            if *cond == msp430::isa::Cond::Always {
                // Flags are dead iff dead at the jump target.
                let preserve = flags_live_at_target(program, target);
                out.lines.extend(snip(&log_block_text(&format!("#{target}"), or_min, preserve))?);
                out.lines.push(original.clone());
            } else {
                // Taken / fall-through diamond: both outcomes are logged.
                // Fall-through liveness scans past the branch; taken-path
                // liveness scans from the target label.
                let ft_live = msp430_asm::ast::flags_live_from(&program.lines, idx + 1);
                let tk_live = flags_live_at_target(program, target);
                let mn = cond.mnemonic();
                let text = format!(
                    " {mn} __cfa{n}_tk\n{ft_log} jmp __cfa{n}_ft\n__cfa{n}_tk:\n{tk_log} br #{target}\n__cfa{n}_ft:\n",
                    ft_log = log_block_text(&format!("#__cfa{n}_ft"), or_min, ft_live),
                    tk_log = log_block_text(&format!("#{target}"), or_min, tk_live),
                );
                out.lines.extend(snip(&text)?);
            }
        }
        Template::One { op, sd, .. } => match op {
            msp430::isa::Op1::Call => {
                let v = branch_value_text(sd, original.line)?;
                out.lines.extend(snip(&log_block_text(&v, or_min, true))?);
                out.lines.push(original.clone());
            }
            msp430::isa::Op1::Reti => {
                // SR sits at 0(sp), return PC at 2(sp); +2 for the pushed SR
                // inside the block.
                out.lines.extend(snip(&log_block_text("4(r1)", or_min, true))?);
                out.lines.push(original.clone());
            }
            _ => unreachable!("only call/reti alter control flow in Format II"),
        },
        Template::Two { op, src, dst, .. } => {
            debug_assert!(matches!(dst, TOperand::Reg(Reg::R0)));
            if *op != msp430::isa::Op2::Mov {
                return Err(PassError::Unsupported {
                    line: original.line,
                    msg: format!(
                        "computed branch `{} …, pc` is not instrumentable; use br/mov",
                        op.mnemonic()
                    ),
                });
            }
            // ret (`mov @sp+, pc`) and br (`mov src, pc`).
            let v = match src {
                TOperand::IndirectInc(Reg::R1) | TOperand::Indirect(Reg::R1) => "2(r1)".to_string(),
                other => branch_value_text(other, original.line)?,
            };
            out.lines.extend(snip(&log_block_text(&v, or_min, true))?);
            out.lines.push(original.clone());
        }
    }
    Ok(())
}

/// Flag liveness at a branch target: resolve a plain-symbol target to its
/// label and scan from there; anything fancier is conservatively live.
fn flags_live_at_target(program: &Program, target: &Expr) -> bool {
    let Expr::Sym(name) = target else { return true };
    for (i, line) in program.lines.iter().enumerate() {
        if matches!(&line.item, Item::Label(l) if l == name) {
            return msp430_asm::ast::flags_live_from(&program.lines, i + 1);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OrStack;
    use apex::{ApexMonitor, PoxConfig};
    use msp430::cpu::Cpu;
    use msp430::platform::Platform;
    use msp430_asm::{assemble_program, parse_program};

    const OR_MIN: u16 = 0x0600;
    const OR_MAX: u16 = 0x06FF;

    fn cfg() -> CfaConfig {
        CfaConfig { or_min: OR_MIN, or_max: OR_MAX, policy: LogPolicy::AllTransfers }
    }

    /// Instruments `op_src`, runs it under APEX, returns (monitor, OR bytes,
    /// symbols getter, platform).
    fn run(op_src: &str, r4_init: u16) -> (ApexMonitor, Vec<u8>, msp430_asm::Image) {
        let program = parse_program(op_src).unwrap();
        let instrumented = instrument(&program, "op", &cfg()).unwrap();
        let img = assemble_program(&instrumented).unwrap();
        let (er_min, er_max) = img.contiguous_extent(img.symbol("op").unwrap()).unwrap();
        let pox = PoxConfig::new(er_min, er_max, er_max - 1, OR_MIN, OR_MAX).unwrap();

        let mut platform = Platform::new();
        img.load_into_platform(&mut platform);
        let mut cpu = Cpu::new();
        cpu.set_reg(msp430::Reg::SP, 0x09FC);
        platform.load_words(0x09FC, &[0xF000]); // return address (simulated call)
        cpu.set_pc(er_min);
        cpu.set_reg(msp430::Reg::R4, r4_init);
        let mut mon = ApexMonitor::new(pox);
        for _ in 0..100_000 {
            if cpu.pc() == 0xF000 {
                break;
            }
            match cpu.step(&mut platform) {
                Ok(s) => mon.observe_step(&s),
                Err(_) => break,
            }
        }
        let or = platform.mem_range(OR_MIN, OR_MAX).to_vec();
        (mon, or, img)
    }

    #[test]
    fn straight_line_op_with_ret_logs_return() {
        let src = "\
            .org 0xE000\nop:\n mov #5, r10\n ret\n";
        let (mon, or, _) = run(src, 0x06FE);
        assert!(mon.exec(), "{:?}", mon.violation());
        let stack = OrStack::new(&or, OR_MIN, OR_MAX);
        // Single CF entry: ret destination = 0xF000.
        assert_eq!(stack.entry(0), Some(0xF000));
    }

    #[test]
    fn wrong_r4_aborts_execution() {
        let src = ".org 0xE000\nop:\n mov #5, r10\n ret\n";
        let (mon, _, _) = run(src, 0x0700); // wrong R init
        assert!(!mon.exec(), "entry check must spin, exec never latches");
    }

    #[test]
    fn conditional_both_paths_logged() {
        // Taken path: r10 = 1 → jz taken.
        let src = "\
            .org 0xE000\nop:\n tst r10\n jz is_zero\n mov #7, r11\nis_zero:\n mov #9, r12\n ret\n";
        let program = parse_program(src).unwrap();
        let instrumented = instrument(&program, "op", &cfg()).unwrap();
        let img = assemble_program(&instrumented).unwrap();
        let is_zero = img.symbol("is_zero").unwrap();

        let (mon, or, _) = run(src, 0x06FE);
        assert!(mon.exec(), "{:?}", mon.violation());
        let stack = OrStack::new(&or, OR_MIN, OR_MAX);
        // r10 = 0 at start → jz taken → first entry = is_zero label address.
        assert_eq!(stack.entry(0), Some(is_zero));
        assert_eq!(stack.entry(1), Some(0xF000), "then the ret");
    }

    #[test]
    fn fallthrough_path_logs_fallthrough_address() {
        let src = "\
            .org 0xE000\nop:\n mov #1, r10\n tst r10\n jz is_zero\n mov #7, r11\nis_zero:\n mov #9, r12\n ret\n";
        let (mon, or, img) = run(src, 0x06FE);
        assert!(mon.exec(), "{:?}", mon.violation());
        let stack = OrStack::new(&or, OR_MIN, OR_MAX);
        // Not taken → logged destination is the fall-through label the pass
        // created (__cfa1_ft), which must differ from is_zero.
        let ft = stack.entry(0).unwrap();
        assert_ne!(ft, img.symbol("is_zero").unwrap());
        assert!(ft > img.symbol("op").unwrap() && ft < img.symbol("is_zero").unwrap());
    }

    #[test]
    fn call_and_inner_ret_logged() {
        let src = "\
            .org 0xE000\nop:\n call #helper\n ret\nhelper:\n mov #3, r9\n ret\n";
        let program = parse_program(src).unwrap();
        let instrumented = instrument(&program, "op", &cfg()).unwrap();
        let img = assemble_program(&instrumented).unwrap();
        let helper = img.symbol("helper").unwrap();

        // Run with er covering the whole block; er_exit = the op's own ret.
        // The op's ret is the last instruction *before* helper, so find it:
        // we run with exit at er_max-1 of the contiguous block — but here
        // helper is last. Instead verify the log contents only.
        let (_, or, _) = run(src, 0x06FE);
        let stack = OrStack::new(&or, OR_MIN, OR_MAX);
        assert_eq!(stack.entry(0), Some(helper), "call destination");
        // entry 1 = helper's ret → return site inside op.
        let ret_site = stack.entry(1).unwrap();
        assert!(ret_site > img.symbol("op").unwrap() && ret_site < helper);
        assert_eq!(stack.entry(2), Some(0xF000), "op's final ret");
    }

    #[test]
    fn indirect_branch_via_register_logged() {
        let src = "\
            .org 0xE000\nop:\n mov #done, r11\n br r11\n nop\ndone:\n ret\n";
        let program = parse_program(src).unwrap();
        let instrumented = instrument(&program, "op", &cfg()).unwrap();
        let img = assemble_program(&instrumented).unwrap();
        let done = img.symbol("done").unwrap();
        let (_, or, _) = run(src, 0x06FE);
        let stack = OrStack::new(&or, OR_MIN, OR_MAX);
        assert_eq!(stack.entry(0), Some(done));
    }

    #[test]
    fn indirect_only_policy_logs_less() {
        let src = "\
            .org 0xE000\nop:\n tst r10\n jz l\n nop\nl:\n call #h\n ret\nh:\n ret\n";
        let program = parse_program(src).unwrap();
        let all = instrument(&program, "op", &cfg()).unwrap();
        let mut icfg = cfg();
        icfg.policy = LogPolicy::IndirectOnly;
        let ind = instrument(&program, "op", &icfg).unwrap();
        let size_all = assemble_program(&all).unwrap().size_bytes();
        let size_ind = assemble_program(&ind).unwrap().size_bytes();
        assert!(size_ind < size_all, "indirect-only must be smaller: {size_ind} vs {size_all}");
    }

    #[test]
    fn r4_use_rejected() {
        let src = ".org 0xE000\nop:\n mov #1, r4\n ret\n";
        let program = parse_program(src).unwrap();
        assert!(matches!(
            instrument(&program, "op", &cfg()),
            Err(PassError::ReservedRegister { .. })
        ));
    }

    #[test]
    fn missing_label_rejected() {
        let program = parse_program(".org 0xE000\nother:\n ret\n").unwrap();
        assert!(matches!(instrument(&program, "op", &cfg()), Err(PassError::OpLabelNotFound(_))));
    }

    #[test]
    fn computed_branch_rejected() {
        let src = ".org 0xE000\nop:\n add r5, pc\n ret\n";
        let program = parse_program(src).unwrap();
        assert!(matches!(instrument(&program, "op", &cfg()), Err(PassError::Unsupported { .. })));
    }

    #[test]
    fn flags_survive_logging_between_chained_branches() {
        // cmp sets flags consumed by TWO successive conditional jumps; the
        // instrumentation of the first must not clobber flags for the
        // second.
        let src = "\
            .org 0xE000\nop:\n mov #5, r10\n cmp #5, r10\n jz both\n nop\nboth:\n jge fin\n mov #0xBAD, r15\nfin:\n ret\n";
        let program = parse_program(src).unwrap();
        let instrumented = instrument(&program, "op", &cfg()).unwrap();
        let img = assemble_program(&instrumented).unwrap();
        let fin = img.symbol("fin").unwrap();
        let (mon, or, _) = run(src, 0x06FE);
        assert!(mon.exec(), "{:?}", mon.violation());
        let stack = OrStack::new(&or, OR_MIN, OR_MAX);
        let both = img.symbol("both").unwrap();
        assert_eq!(stack.entry(0), Some(both), "jz taken (5 == 5)");
        assert_eq!(stack.entry(1), Some(fin), "jge taken (N==V after equality)");
        assert_eq!(stack.entry(2), Some(0xF000));
    }

    #[test]
    fn write_check_allows_benign_indexed_stores() {
        // A store via pointer into ordinary data memory proceeds normally.
        let src = "\
            .org 0xE000\nop:\n mov #0x0300, r14\n mov #0xAA, 0(r14)\n ret\n";
        let (mon, _, _) = run(src, 0x06FE);
        assert!(mon.exec(), "{:?}", mon.violation());
    }

    #[test]
    fn write_check_aborts_store_into_live_log() {
        // A pointer corrupted to target the log region must abort before
        // the store (F5): EXEC never latches.
        let src = "\
            .org 0xE000\nop:\n mov #0x06FE, r14\n mov #0xAA, 0(r14)\n ret\n";
        let (mon, or, _) = run(src, 0x06FE);
        assert!(!mon.exec(), "store into [R, OR_max] must abort");
        // The log slot was not clobbered with 0xAA by the op.
        let stack = OrStack::new(&or, OR_MIN, OR_MAX);
        assert_ne!(stack.entry(0), Some(0x00AA));
    }

    #[test]
    fn write_below_r_is_permitted() {
        // Writes below the current R (unused log capacity) are outside
        // [R, OR_max] and therefore allowed — they will be overwritten by
        // future log pushes anyway.
        let src = "\
            .org 0xE000\nop:\n mov #0x0600, r14\n mov #0xAA, 0(r14)\n ret\n";
        let (mon, _, _) = run(src, 0x06FE);
        assert!(mon.exec(), "{:?}", mon.violation());
    }

    #[test]
    fn static_store_into_or_rejected_at_instrumentation() {
        let src = ".org 0xE000\nop:\n mov #1, &0x0680\n ret\n";
        let program = parse_program(src).unwrap();
        assert!(matches!(instrument(&program, "op", &cfg()), Err(PassError::Unsupported { .. })));
    }

    #[test]
    fn log_overflow_aborts() {
        // A loop that logs more entries than OR can hold must spin-abort,
        // never reach the exit, and leave EXEC clear.
        let src = "\
            .org 0xE000\nop:\n mov #200, r10\nloop:\n dec r10\n jnz loop\n ret\n";
        let (mon, _, _) = run(src, 0x06FE);
        assert!(!mon.exec(), "overflowing log must abort before legal exit");
    }
}
